//! Bounded in-memory store of time-series samples.

use crate::metric::MetricId;
use crate::sample::Sample;
use crate::schema::Schema;
use crate::window::{Window, WindowSpec};
use crate::{Tick, Value};
use std::collections::VecDeque;

/// A bounded, append-only store of [`Sample`]s in tick order.
///
/// The store keeps at most `capacity` samples; the oldest are evicted as new
/// ones arrive.  This mirrors how a monitoring pipeline only retains a finite
/// history for online analysis — the anomaly detector's baseline window `Nb`
/// must fit in the retained history.
#[derive(Debug, Clone)]
pub struct SeriesStore {
    schema: Schema,
    capacity: usize,
    samples: VecDeque<Sample>,
}

impl SeriesStore {
    /// Creates a store that retains at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(schema: Schema, capacity: usize) -> Self {
        assert!(capacity > 0, "series store capacity must be positive");
        SeriesStore {
            schema,
            capacity,
            samples: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// The schema of all stored samples.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of samples currently retained.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the store holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum number of samples retained.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a sample, evicting the oldest if the store is full.
    ///
    /// # Panics
    /// Panics if the sample's width does not match the schema, or if its tick
    /// is older than the most recent stored tick (samples must arrive in
    /// nondecreasing tick order).
    pub fn push(&mut self, sample: Sample) {
        assert_eq!(
            sample.width(),
            self.schema.len(),
            "sample width does not match store schema"
        );
        if let Some(last) = self.samples.back() {
            assert!(
                sample.tick() >= last.tick(),
                "samples must be pushed in nondecreasing tick order ({} < {})",
                sample.tick(),
                last.tick()
            );
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// The tick of the most recent sample, if any.
    pub fn latest_tick(&self) -> Option<Tick> {
        self.samples.back().map(Sample::tick)
    }

    /// Iterates over all retained samples in tick order.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Returns the last `n` samples (or fewer if not enough are retained),
    /// oldest first.
    ///
    /// Allocation-free: borrows directly from the ring buffer.  Diagnosis
    /// engines probe the tail of the series every tick, so this path must
    /// not clone or collect.
    pub fn last_n(&self, n: usize) -> impl ExactSizeIterator<Item = &Sample> + Clone {
        let start = self.samples.len().saturating_sub(n);
        self.samples.range(start..)
    }

    /// Returns all samples with tick in `[from, to)`, oldest first.
    ///
    /// Samples are tick-ordered, so both endpoints are found by binary
    /// search and the result borrows a contiguous stretch of the ring
    /// buffer — no per-call allocation, no full scan.
    pub fn range(&self, from: Tick, to: Tick) -> impl ExactSizeIterator<Item = &Sample> + Clone {
        let lo = self.samples.partition_point(|s| s.tick() < from);
        let hi = self.samples.partition_point(|s| s.tick() < to).max(lo);
        self.samples.range(lo..hi)
    }

    /// Extracts the values of one metric over the last `n` samples, oldest
    /// first, without materializing the sample list.
    pub fn metric_tail(&self, id: MetricId, n: usize) -> impl Iterator<Item = Value> + '_ {
        self.last_n(n).map(move |s| s.get(id))
    }

    /// The retained samples as (up to) two contiguous slices, oldest first —
    /// the raw ring-buffer halves, for bulk readers that want memcpy-friendly
    /// access without an iterator in the loop.
    pub fn as_slices(&self) -> (&[Sample], &[Sample]) {
        self.samples.as_slices()
    }

    /// Materializes a [`Window`] according to `spec`, anchored at the most
    /// recent sample.
    ///
    /// Returns `None` if fewer samples are retained than the window requires.
    pub fn window(&self, spec: WindowSpec) -> Option<Window> {
        Window::from_store(self, spec)
    }

    /// Materializes the paper's baseline/current window pair: a baseline
    /// window of `nb` samples immediately preceding a current window of `nc`
    /// samples ending at the most recent sample.
    ///
    /// Returns `None` until at least `nb + nc` samples are retained.
    pub fn baseline_current(&self, nb: usize, nc: usize) -> Option<(Window, Window)> {
        if self.samples.len() < nb + nc || nb == 0 || nc == 0 {
            return None;
        }
        let total = self.samples.len();
        let baseline = self.samples.range(total - nc - nb..total - nc);
        let current = self.samples.range(total - nc..);
        Some((
            Window::from_iter(self.schema.clone(), baseline),
            Window::from_iter(self.schema.clone(), current),
        ))
    }

    /// Removes all samples (the schema and capacity are kept).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricKind, Tier};
    use crate::schema::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .metric("a", Tier::Web, MetricKind::Count)
            .metric("b", Tier::Database, MetricKind::Gauge)
            .build()
    }

    fn sample(schema: &Schema, tick: Tick, a: f64, b: f64) -> Sample {
        let mut s = Sample::zeroed(schema, tick);
        s.set(schema.expect_id("a"), a);
        s.set(schema.expect_id("b"), b);
        s
    }

    #[test]
    fn push_and_query_in_order() {
        let sc = schema();
        let mut store = SeriesStore::new(sc.clone(), 10);
        for t in 0..5 {
            store.push(sample(&sc, t, t as f64, 0.0));
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.latest_tick(), Some(4));
        let tail: Vec<f64> = store.metric_tail(sc.expect_id("a"), 3).collect();
        assert_eq!(tail, vec![2.0, 3.0, 4.0]);
        assert_eq!(store.range(1, 3).count(), 2);
        let ticks: Vec<Tick> = store.range(1, 4).map(Sample::tick).collect();
        assert_eq!(ticks, vec![1, 2, 3]);
        assert_eq!(store.range(9, 20).count(), 0);
        assert_eq!(store.range(3, 3).count(), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let sc = schema();
        let mut store = SeriesStore::new(sc.clone(), 3);
        for t in 0..10 {
            store.push(sample(&sc, t, t as f64, 0.0));
        }
        assert_eq!(store.len(), 3);
        let ticks: Vec<Tick> = store.iter().map(Sample::tick).collect();
        assert_eq!(ticks, vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "nondecreasing tick order")]
    fn out_of_order_push_is_rejected() {
        let sc = schema();
        let mut store = SeriesStore::new(sc.clone(), 10);
        store.push(sample(&sc, 5, 0.0, 0.0));
        store.push(sample(&sc, 4, 0.0, 0.0));
    }

    #[test]
    fn baseline_current_splits_history() {
        let sc = schema();
        let mut store = SeriesStore::new(sc.clone(), 100);
        assert!(store.baseline_current(5, 2).is_none());
        for t in 0..10 {
            store.push(sample(&sc, t, t as f64, 0.0));
        }
        let (baseline, current) = store.baseline_current(5, 2).unwrap();
        assert_eq!(baseline.len(), 5);
        assert_eq!(current.len(), 2);
        // Current window holds the newest two samples (ticks 8, 9);
        // baseline holds the five before them (ticks 3..=7).
        assert_eq!(current.column(sc.expect_id("a")), vec![8.0, 9.0]);
        assert_eq!(
            baseline.column(sc.expect_id("a")),
            vec![3.0, 4.0, 5.0, 6.0, 7.0]
        );
    }

    #[test]
    fn last_n_handles_short_history() {
        let sc = schema();
        let mut store = SeriesStore::new(sc.clone(), 10);
        store.push(sample(&sc, 0, 1.0, 2.0));
        assert_eq!(store.last_n(5).count(), 1);
    }

    #[test]
    fn clear_retains_schema() {
        let sc = schema();
        let mut store = SeriesStore::new(sc.clone(), 10);
        store.push(sample(&sc, 0, 1.0, 2.0));
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.schema().len(), 2);
    }
}
