//! # selfheal-telemetry
//!
//! Multidimensional time-series substrate for self-healing multitier
//! services, following Section 4.2 of *Toward Self-Healing Multitier
//! Services* (Cook, Babu, Candea, Duan; ICDE 2007).
//!
//! The paper assumes that "the data collected from the service is a
//! multidimensional row-and-column time-series with schema `X1, X2, ..., Xn`"
//! where each attribute is a metric of performance or failure, either
//! measured directly from a tier or derived from measured metrics.  This
//! crate provides exactly that substrate:
//!
//! * [`MetricId`] / [`MetricDef`] — typed identifiers and metadata for the
//!   attributes `X1..Xn` (which tier they come from, their unit, whether they
//!   require *invasive* instrumentation).
//! * [`Schema`] — an ordered, immutable set of metric definitions that fixes
//!   the column layout of every sample row.
//! * [`Sample`] — one timestamped row of the time series.
//! * [`SeriesStore`] — an in-memory, bounded store of samples with window
//!   queries (used to build the *baseline* and *current* windows of the
//!   paper's anomaly detector).
//! * [`Window`] / [`WindowSpec`] — sliding-window extraction and aggregation.
//! * [`Slo`] / [`SloMonitor`] — service-level-objective definitions and the
//!   SLO-compliance monitor the paper lists as a failure-detection
//!   prerequisite (Section 4.1).
//! * [`stats`] — descriptive statistics (means, percentiles, EWMA,
//!   histograms) shared by the diagnosis and learning layers.
//! * [`export`] — hand-rolled CSV import/export for benchmark artifacts.
//!
//! The crate is deliberately dependency-light: it is consumed by the
//! simulator (which *produces* samples), by the diagnosis engines and the
//! FixSym engine (which *consume* samples), and by the benchmark harness.
//!
//! ## Example
//!
//! ```
//! use selfheal_telemetry::{SchemaBuilder, MetricKind, Tier, SeriesStore, Sample};
//!
//! let schema = SchemaBuilder::new()
//!     .metric("web.cpu_util", Tier::Web, MetricKind::Utilization)
//!     .metric("db.buffer_miss_rate", Tier::Database, MetricKind::Ratio)
//!     .metric("slo.violations", Tier::Service, MetricKind::Count)
//!     .build();
//!
//! let mut store = SeriesStore::new(schema.clone(), 1024);
//! let mut sample = Sample::zeroed(&schema, 0);
//! sample.set(schema.id("web.cpu_util").unwrap(), 0.42);
//! store.push(sample);
//! assert_eq!(store.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod health;
pub mod metric;
pub mod sample;
pub mod schema;
pub mod series;
pub mod slo;
pub mod stats;
pub mod window;

pub use health::{FleetHealth, ReplicaHealth, ReplicaState};
pub use metric::{InstrumentationCost, MetricDef, MetricId, MetricKind, Tier};
pub use sample::Sample;
pub use schema::{Schema, SchemaBuilder};
pub use series::SeriesStore;
pub use slo::{Slo, SloKind, SloMonitor, SloStatus, SloTargets, SloViolation};
pub use stats::{Ewma, Histogram, Summary};
pub use window::{Window, WindowSpec};

/// Simulation time, measured in discrete ticks.
///
/// One tick corresponds to one data-collection interval of the monitored
/// service (the simulator uses one tick = one second of service time).
pub type Tick = u64;

/// A measured metric value.
///
/// All metrics are represented as `f64`, matching the paper's treatment of
/// the collected data as a numeric row-and-column time series.
pub type Value = f64;
