//! Recorded traces and their replay: [`RecordedTrace`] + [`ReplaySource`].
//!
//! Any [`TraceSource`] can be captured tick-by-tick into a
//! [`RecordedTrace`], persisted as JSON-lines (see [`crate::codec`]), and
//! replayed later through a [`ReplaySource`] — byte-identically when
//! replayed in [`ReplayMode::Truncate`] with no phase shift, or staggered
//! across a fleet by giving each replica a different
//! [`ReplaySource::with_phase`] offset into the same trace.

use crate::codec::{self, CodecError, TraceRecord};
use crate::request::Request;
use crate::source::TraceSource;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// An in-memory request trace: one [`TraceRecord`] per recorded tick, in
/// recording order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecordedTrace {
    records: Vec<TraceRecord>,
}

impl RecordedTrace {
    /// Wraps a sequence of per-tick records.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        RecordedTrace { records }
    }

    /// Captures `ticks` ticks from a live source.
    ///
    /// The source is advanced (not reset first): callers wanting a
    /// from-the-start capture should [`TraceSource::reset`] beforehand.
    pub fn capture<S: TraceSource + ?Sized>(source: &mut S, ticks: u64) -> Self {
        let records = (0..ticks)
            .map(|tick| TraceRecord::new(tick, source.next_tick(tick)))
            .collect();
        RecordedTrace { records }
    }

    /// The per-tick records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no ticks.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total requests across all recorded ticks.
    pub fn total_requests(&self) -> u64 {
        self.records.iter().map(|r| r.requests.len() as u64).sum()
    }

    /// Serializes the trace as a JSON-lines document.
    pub fn to_jsonl(&self) -> String {
        codec::to_jsonl(&self.records)
    }

    /// Parses a JSON-lines document into a trace.
    pub fn from_jsonl(text: &str) -> Result<Self, CodecError> {
        codec::from_jsonl(text).map(RecordedTrace::new)
    }

    /// Writes the trace to a JSON-lines file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Reads a trace from a JSON-lines file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        RecordedTrace::from_jsonl(&text)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))
    }
}

/// What a [`ReplaySource`] does when the scenario outlives the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Wrap around to the beginning of the trace.
    Loop,
    /// Emit empty batches once the trace is exhausted.
    Truncate,
}

/// Replays a [`RecordedTrace`] as a [`TraceSource`].
///
/// The source keeps its own tick cursor (advanced once per `next_tick`) and
/// reads the trace at `cursor + phase`, wrapping or truncating per
/// [`ReplayMode`].  Emitted requests are re-stamped with fresh monotone ids
/// and the *current* tick, so a phase-shifted or looped replay still feeds
/// the simulator requests that arrive "now" — and an unshifted
/// [`ReplayMode::Truncate`] replay of a synthetic capture reproduces the
/// original generator's output exactly.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    trace: Arc<RecordedTrace>,
    mode: ReplayMode,
    phase: u64,
    cursor: u64,
    next_request_id: u64,
}

impl ReplaySource {
    /// Creates a replay of `trace` with no phase shift.
    pub fn new(trace: RecordedTrace, mode: ReplayMode) -> Self {
        Self::shared(Arc::new(trace), mode)
    }

    /// Creates a replay over an already-shared trace.  Fleets use this so N
    /// replicas reference one trace allocation instead of N deep copies
    /// (cloning a `ReplaySource` is likewise a refcount bump).
    pub fn shared(trace: Arc<RecordedTrace>, mode: ReplayMode) -> Self {
        ReplaySource {
            trace,
            mode,
            phase: 0,
            cursor: 0,
            next_request_id: 0,
        }
    }

    /// Starts the replay `phase` ticks into the trace (per-replica phase
    /// shifts, so a fleet does not hit every recorded surge in lockstep).
    pub fn with_phase(mut self, phase: u64) -> Self {
        self.phase = phase;
        self
    }

    /// The configured phase shift.
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// The replay mode.
    pub fn mode(&self) -> ReplayMode {
        self.mode
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &RecordedTrace {
        &self.trace
    }
}

impl TraceSource for ReplaySource {
    fn next_tick(&mut self, tick: u64) -> Vec<Request> {
        let position = self.cursor + self.phase;
        self.cursor += 1;
        let len = self.trace.len() as u64;
        if len == 0 {
            return Vec::new();
        }
        let index = match self.mode {
            ReplayMode::Loop => (position % len) as usize,
            ReplayMode::Truncate => {
                if position >= len {
                    return Vec::new();
                }
                position as usize
            }
        };
        self.trace.records()[index]
            .requests
            .iter()
            .map(|request| {
                let id = self.next_request_id;
                self.next_request_id += 1;
                Request::new(id, request.kind, tick)
            })
            .collect()
    }

    fn reset(&mut self) {
        self.cursor = 0;
        self.next_request_id = 0;
    }

    fn clone_box(&self) -> Box<dyn TraceSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::mix::WorkloadMix;
    use crate::trace::TraceGenerator;

    fn captured(ticks: u64) -> RecordedTrace {
        let mut generator = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Poisson { rate: 8.0 },
            21,
        );
        RecordedTrace::capture(&mut generator, ticks)
    }

    #[test]
    fn capture_then_truncate_replay_reproduces_the_generator() {
        let trace = captured(25);
        let mut generator = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Poisson { rate: 8.0 },
            21,
        );
        let mut replay = ReplaySource::new(trace.clone(), ReplayMode::Truncate);
        for tick in 0..25 {
            assert_eq!(replay.next_tick(tick), generator.next_tick(tick));
        }
        // Past the end, truncate goes quiet.
        assert!(replay.next_tick(25).is_empty());
        assert!(trace.total_requests() > 0);
        assert_eq!(trace.len(), 25);
    }

    #[test]
    fn jsonl_round_trip_preserves_the_trace_structurally() {
        let trace = captured(12);
        let parsed = RecordedTrace::from_jsonl(&trace.to_jsonl()).expect("round trip");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.len(), 12);
    }

    #[test]
    fn loop_mode_wraps_and_restamps_ticks_and_ids() {
        let trace = captured(10);
        let mut replay = ReplaySource::new(trace.clone(), ReplayMode::Loop);
        let mut first_cycle = Vec::new();
        for tick in 0..10 {
            first_cycle.push(replay.next_tick(tick));
        }
        let wrapped = replay.next_tick(10);
        // Same kinds as the first recorded tick, but stamped at tick 10 with
        // fresh monotone ids.
        let kinds: Vec<_> = wrapped.iter().map(|r| r.kind).collect();
        let original_kinds: Vec<_> = first_cycle[0].iter().map(|r| r.kind).collect();
        assert_eq!(kinds, original_kinds);
        assert!(wrapped.iter().all(|r| r.arrival_tick == 10));
        if let (Some(last_of_cycle), Some(first_wrapped)) =
            (first_cycle.last().and_then(|b| b.last()), wrapped.first())
        {
            assert_eq!(first_wrapped.id, last_of_cycle.id + 1);
        }
    }

    #[test]
    fn phase_shift_offsets_the_replay_start() {
        let trace = captured(10);
        let mut shifted = ReplaySource::new(trace.clone(), ReplayMode::Loop).with_phase(4);
        let batch = shifted.next_tick(0);
        let expected_kinds: Vec<_> = trace.records()[4].requests.iter().map(|r| r.kind).collect();
        assert_eq!(
            batch.iter().map(|r| r.kind).collect::<Vec<_>>(),
            expected_kinds
        );
        assert_eq!(shifted.phase(), 4);

        // Reset rewinds the cursor but keeps the phase.
        shifted.next_tick(1);
        shifted.reset();
        assert_eq!(
            shifted
                .next_tick(0)
                .iter()
                .map(|r| r.kind)
                .collect::<Vec<_>>(),
            expected_kinds
        );
    }

    #[test]
    fn empty_trace_yields_empty_batches() {
        let mut replay = ReplaySource::new(RecordedTrace::default(), ReplayMode::Loop);
        assert!(replay.trace().is_empty());
        assert!(replay.next_tick(0).is_empty());
    }
}
