//! JSON-lines codec for request traces.
//!
//! One line per tick, with the schema:
//!
//! ```text
//! {"tick":12,"requests":[{"id":480,"kind":"bid","arrival_tick":12}, ...]}
//! ```
//!
//! The workspace builds without registry access (the `serde` dependency is a
//! no-op shim), so both directions are hand-rolled here.  The parser accepts
//! arbitrary whitespace between tokens and object keys in any order, and the
//! pair satisfies `parse ∘ serialize = id` — asserted structurally by the
//! codec property test in `tests/properties.rs`.

use crate::request::{Request, RequestKind};
use std::fmt;

/// The batch of requests that arrived in one tick — the unit record of a
/// JSON-lines trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Tick (within the recorded run) at which the batch arrived.
    pub tick: u64,
    /// The batch, in arrival order.
    pub requests: Vec<Request>,
}

impl TraceRecord {
    /// Creates a record.
    pub fn new(tick: u64, requests: Vec<Request>) -> Self {
        TraceRecord { tick, requests }
    }
}

/// A parse failure, with the 1-based line number when decoding a whole
/// JSON-lines document (0 when parsing a single line directly).
#[derive(Debug, Clone, PartialEq)]
pub struct CodecError {
    /// 1-based line of the failure; 0 for single-line parses.
    pub line: usize,
    /// Byte offset of the failure within the line.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl CodecError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        CodecError {
            line: 0,
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "trace codec error at line {}, byte {}: {}",
                self.line, self.offset, self.message
            )
        } else {
            write!(
                f,
                "trace codec error at byte {}: {}",
                self.offset, self.message
            )
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes one record as a single JSON line (no trailing newline).
pub fn serialize_record(record: &TraceRecord) -> String {
    let mut out = String::with_capacity(32 + record.requests.len() * 48);
    out.push_str("{\"tick\":");
    out.push_str(&record.tick.to_string());
    out.push_str(",\"requests\":[");
    for (i, request) in record.requests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        out.push_str(&request.id.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(request.kind.label());
        out.push_str("\",\"arrival_tick\":");
        out.push_str(&request.arrival_tick.to_string());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parses one JSON line back into a record.
pub fn parse_record(line: &str) -> Result<TraceRecord, CodecError> {
    let mut cursor = Cursor::new(line);
    let record = cursor.parse_record()?;
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err(CodecError::at(
            cursor.pos,
            "trailing data after the record object",
        ));
    }
    Ok(record)
}

/// Serializes a sequence of records as a JSON-lines document (one record per
/// line, trailing newline included when nonempty).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&serialize_record(record));
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines document (blank lines are skipped).
pub fn from_jsonl(text: &str) -> Result<Vec<TraceRecord>, CodecError> {
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_record(line).map_err(|mut err| {
            err.line = index + 1;
            err
        })?);
    }
    Ok(records)
}

/// A minimal recursive-descent scanner over one line.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str) -> Self {
        Cursor {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), CodecError> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(CodecError::at(
                self.pos,
                format!("expected '{}', found '{}'", byte as char, b as char),
            )),
            None => Err(CodecError::at(
                self.pos,
                format!("expected '{}', found end of line", byte as char),
            )),
        }
    }

    fn parse_u64(&mut self) -> Result<u64, CodecError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(CodecError::at(start, "expected an unsigned integer"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        digits
            .parse::<u64>()
            .map_err(|_| CodecError::at(start, format!("integer out of range: {digits}")))
    }

    /// Parses a `"..."` string.  Trace strings are request-kind labels and
    /// object keys — plain ASCII identifiers — so escapes are rejected
    /// rather than interpreted.
    fn parse_string(&mut self) -> Result<&'a str, CodecError> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| CodecError::at(start, "string is not valid UTF-8"))?;
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    return Err(CodecError::at(
                        self.pos,
                        "escape sequences are not used in trace files",
                    ))
                }
                Some(_) => self.pos += 1,
                None => return Err(CodecError::at(self.pos, "unterminated string")),
            }
        }
    }

    fn parse_record(&mut self) -> Result<TraceRecord, CodecError> {
        self.expect(b'{')?;
        let mut tick: Option<u64> = None;
        let mut requests: Option<Vec<Request>> = None;
        loop {
            let key_at = {
                self.skip_ws();
                self.pos
            };
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key {
                "tick" => tick = Some(self.parse_u64()?),
                "requests" => requests = Some(self.parse_requests()?),
                other => {
                    return Err(CodecError::at(
                        key_at,
                        format!("unknown record field \"{other}\""),
                    ))
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(CodecError::at(self.pos, "expected ',' or '}' in record")),
            }
        }
        match (tick, requests) {
            (Some(tick), Some(requests)) => Ok(TraceRecord { tick, requests }),
            (None, _) => Err(CodecError::at(self.pos, "record is missing \"tick\"")),
            (_, None) => Err(CodecError::at(self.pos, "record is missing \"requests\"")),
        }
    }

    fn parse_requests(&mut self) -> Result<Vec<Request>, CodecError> {
        self.expect(b'[')?;
        let mut requests = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(requests);
        }
        loop {
            requests.push(self.parse_request()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(requests);
                }
                _ => {
                    return Err(CodecError::at(
                        self.pos,
                        "expected ',' or ']' in request array",
                    ))
                }
            }
        }
    }

    fn parse_request(&mut self) -> Result<Request, CodecError> {
        self.expect(b'{')?;
        let mut id: Option<u64> = None;
        let mut kind: Option<RequestKind> = None;
        let mut arrival_tick: Option<u64> = None;
        loop {
            let key_at = {
                self.skip_ws();
                self.pos
            };
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key {
                "id" => id = Some(self.parse_u64()?),
                "arrival_tick" => arrival_tick = Some(self.parse_u64()?),
                "kind" => {
                    let label_at = {
                        self.skip_ws();
                        self.pos
                    };
                    let label = self.parse_string()?;
                    kind = Some(RequestKind::from_label(label).ok_or_else(|| {
                        CodecError::at(label_at, format!("unknown request kind \"{label}\""))
                    })?);
                }
                other => {
                    return Err(CodecError::at(
                        key_at,
                        format!("unknown request field \"{other}\""),
                    ))
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(CodecError::at(self.pos, "expected ',' or '}' in request")),
            }
        }
        match (id, kind, arrival_tick) {
            (Some(id), Some(kind), Some(arrival_tick)) => Ok(Request::new(id, kind, arrival_tick)),
            (None, ..) => Err(CodecError::at(self.pos, "request is missing \"id\"")),
            (_, None, _) => Err(CodecError::at(self.pos, "request is missing \"kind\"")),
            (.., None) => Err(CodecError::at(
                self.pos,
                "request is missing \"arrival_tick\"",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> TraceRecord {
        TraceRecord::new(
            7,
            vec![
                Request::new(100, RequestKind::Bid, 7),
                Request::new(101, RequestKind::AboutMe, 7),
            ],
        )
    }

    #[test]
    fn serialize_then_parse_is_identity() {
        let original = record();
        let line = serialize_record(&original);
        assert_eq!(parse_record(&line), Ok(original));
    }

    #[test]
    fn empty_batches_round_trip() {
        let original = TraceRecord::new(3, Vec::new());
        let line = serialize_record(&original);
        assert_eq!(line, "{\"tick\":3,\"requests\":[]}");
        assert_eq!(parse_record(&line), Ok(original));
    }

    #[test]
    fn whitespace_and_key_order_are_tolerated() {
        let line = "{ \"requests\": [ {\"kind\": \"browse\", \"arrival_tick\": 2, \"id\": 9} ], \
                    \"tick\": 2 }";
        let parsed = parse_record(line).expect("reordered keys parse");
        assert_eq!(parsed.tick, 2);
        assert_eq!(
            parsed.requests,
            vec![Request::new(9, RequestKind::Browse, 2)]
        );
    }

    #[test]
    fn jsonl_document_round_trips_and_numbers_error_lines() {
        let records = vec![record(), TraceRecord::new(8, Vec::new())];
        let text = to_jsonl(&records);
        assert_eq!(from_jsonl(&text), Ok(records));

        let broken = format!("{}\n{{\"tick\":oops}}\n", serialize_record(&record()));
        let err = from_jsonl(&broken).expect_err("second line is invalid");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_kinds_and_fields_are_rejected() {
        let bad_kind =
            "{\"tick\":0,\"requests\":[{\"id\":0,\"kind\":\"checkout\",\"arrival_tick\":0}]}";
        assert!(parse_record(bad_kind)
            .unwrap_err()
            .message
            .contains("unknown request kind"));
        let bad_field = "{\"tick\":0,\"requests\":[],\"color\":3}";
        assert!(parse_record(bad_field)
            .unwrap_err()
            .message
            .contains("unknown record field"));
        let trailing = "{\"tick\":0,\"requests\":[]}gunk";
        assert!(parse_record(trailing)
            .unwrap_err()
            .message
            .contains("trailing data"));
    }
}
