//! JSON-lines codec for request traces.
//!
//! One line per tick, with the schema:
//!
//! ```text
//! {"tick":12,"requests":[{"id":480,"kind":"bid","arrival_tick":12}, ...]}
//! ```
//!
//! The workspace builds without registry access (the `serde` dependency is a
//! no-op shim), so both directions are hand-rolled on the shared
//! [`selfheal_jsonl`] primitives (the same scanner backs the synopsis codec
//! in `selfheal-core`).  The parser accepts arbitrary whitespace between
//! tokens and object keys in any order, and the pair satisfies
//! `parse ∘ serialize = id` — asserted structurally by the codec property
//! test in `tests/properties.rs`.

use crate::request::{Request, RequestKind};
use selfheal_jsonl::{parse_lines, Scanner};

/// A parse failure, with the 1-based line number when decoding a whole
/// JSON-lines document (0 when parsing a single line directly).
pub type CodecError = selfheal_jsonl::JsonError;

/// The batch of requests that arrived in one tick — the unit record of a
/// JSON-lines trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Tick (within the recorded run) at which the batch arrived.
    pub tick: u64,
    /// The batch, in arrival order.
    pub requests: Vec<Request>,
}

impl TraceRecord {
    /// Creates a record.
    pub fn new(tick: u64, requests: Vec<Request>) -> Self {
        TraceRecord { tick, requests }
    }
}

/// Serializes one record as a single JSON line (no trailing newline).
pub fn serialize_record(record: &TraceRecord) -> String {
    let mut out = String::with_capacity(32 + record.requests.len() * 48);
    out.push_str("{\"tick\":");
    out.push_str(&record.tick.to_string());
    out.push_str(",\"requests\":[");
    for (i, request) in record.requests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        out.push_str(&request.id.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(request.kind.label());
        out.push_str("\",\"arrival_tick\":");
        out.push_str(&request.arrival_tick.to_string());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parses one JSON line back into a record.
pub fn parse_record(line: &str) -> Result<TraceRecord, CodecError> {
    let mut scanner = Scanner::new(line);
    let record = scan_record(&mut scanner)?;
    scanner
        .finish()
        .map_err(|err| CodecError::at(err.offset, "trailing data after the record object"))?;
    Ok(record)
}

/// Serializes a sequence of records as a JSON-lines document (one record per
/// line, trailing newline included when nonempty).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&serialize_record(record));
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines document (blank lines are skipped).
pub fn from_jsonl(text: &str) -> Result<Vec<TraceRecord>, CodecError> {
    parse_lines(text, parse_record)
}

fn scan_record(s: &mut Scanner<'_>) -> Result<TraceRecord, CodecError> {
    s.expect(b'{')?;
    let mut tick: Option<u64> = None;
    let mut requests: Option<Vec<Request>> = None;
    loop {
        let key_at = {
            s.skip_ws();
            s.pos()
        };
        let key = s.parse_string()?;
        s.expect(b':')?;
        match key.as_ref() {
            "tick" => tick = Some(s.parse_u64()?),
            "requests" => requests = Some(scan_requests(s)?),
            other => {
                return Err(CodecError::at(
                    key_at,
                    format!("unknown record field \"{other}\""),
                ))
            }
        }
        s.skip_ws();
        match s.peek() {
            Some(b',') => s.bump(),
            Some(b'}') => {
                s.bump();
                break;
            }
            _ => return Err(CodecError::at(s.pos(), "expected ',' or '}' in record")),
        }
    }
    match (tick, requests) {
        (Some(tick), Some(requests)) => Ok(TraceRecord { tick, requests }),
        (None, _) => Err(CodecError::at(s.pos(), "record is missing \"tick\"")),
        (_, None) => Err(CodecError::at(s.pos(), "record is missing \"requests\"")),
    }
}

fn scan_requests(s: &mut Scanner<'_>) -> Result<Vec<Request>, CodecError> {
    s.expect(b'[')?;
    let mut requests = Vec::new();
    s.skip_ws();
    if s.peek() == Some(b']') {
        s.bump();
        return Ok(requests);
    }
    loop {
        requests.push(scan_request(s)?);
        s.skip_ws();
        match s.peek() {
            Some(b',') => s.bump(),
            Some(b']') => {
                s.bump();
                return Ok(requests);
            }
            _ => {
                return Err(CodecError::at(
                    s.pos(),
                    "expected ',' or ']' in request array",
                ))
            }
        }
    }
}

fn scan_request(s: &mut Scanner<'_>) -> Result<Request, CodecError> {
    s.expect(b'{')?;
    let mut id: Option<u64> = None;
    let mut kind: Option<RequestKind> = None;
    let mut arrival_tick: Option<u64> = None;
    loop {
        let key_at = {
            s.skip_ws();
            s.pos()
        };
        let key = s.parse_string()?;
        s.expect(b':')?;
        match key.as_ref() {
            "id" => id = Some(s.parse_u64()?),
            "arrival_tick" => arrival_tick = Some(s.parse_u64()?),
            "kind" => {
                let label_at = {
                    s.skip_ws();
                    s.pos()
                };
                let label = s.parse_string()?;
                kind = Some(RequestKind::from_label(&label).ok_or_else(|| {
                    CodecError::at(label_at, format!("unknown request kind \"{label}\""))
                })?);
            }
            other => {
                return Err(CodecError::at(
                    key_at,
                    format!("unknown request field \"{other}\""),
                ))
            }
        }
        s.skip_ws();
        match s.peek() {
            Some(b',') => s.bump(),
            Some(b'}') => {
                s.bump();
                break;
            }
            _ => return Err(CodecError::at(s.pos(), "expected ',' or '}' in request")),
        }
    }
    match (id, kind, arrival_tick) {
        (Some(id), Some(kind), Some(arrival_tick)) => Ok(Request::new(id, kind, arrival_tick)),
        (None, ..) => Err(CodecError::at(s.pos(), "request is missing \"id\"")),
        (_, None, _) => Err(CodecError::at(s.pos(), "request is missing \"kind\"")),
        (.., None) => Err(CodecError::at(
            s.pos(),
            "request is missing \"arrival_tick\"",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> TraceRecord {
        TraceRecord::new(
            7,
            vec![
                Request::new(100, RequestKind::Bid, 7),
                Request::new(101, RequestKind::AboutMe, 7),
            ],
        )
    }

    #[test]
    fn serialize_then_parse_is_identity() {
        let original = record();
        let line = serialize_record(&original);
        assert_eq!(parse_record(&line), Ok(original));
    }

    #[test]
    fn empty_batches_round_trip() {
        let original = TraceRecord::new(3, Vec::new());
        let line = serialize_record(&original);
        assert_eq!(line, "{\"tick\":3,\"requests\":[]}");
        assert_eq!(parse_record(&line), Ok(original));
    }

    #[test]
    fn whitespace_and_key_order_are_tolerated() {
        let line = "{ \"requests\": [ {\"kind\": \"browse\", \"arrival_tick\": 2, \"id\": 9} ], \
                    \"tick\": 2 }";
        let parsed = parse_record(line).expect("reordered keys parse");
        assert_eq!(parsed.tick, 2);
        assert_eq!(
            parsed.requests,
            vec![Request::new(9, RequestKind::Browse, 2)]
        );
    }

    #[test]
    fn jsonl_document_round_trips_and_numbers_error_lines() {
        let records = vec![record(), TraceRecord::new(8, Vec::new())];
        let text = to_jsonl(&records);
        assert_eq!(from_jsonl(&text), Ok(records));

        let broken = format!("{}\n{{\"tick\":oops}}\n", serialize_record(&record()));
        let err = from_jsonl(&broken).expect_err("second line is invalid");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_kinds_and_fields_are_rejected() {
        let bad_kind =
            "{\"tick\":0,\"requests\":[{\"id\":0,\"kind\":\"checkout\",\"arrival_tick\":0}]}";
        assert!(parse_record(bad_kind)
            .unwrap_err()
            .message
            .contains("unknown request kind"));
        let bad_field = "{\"tick\":0,\"requests\":[],\"color\":3}";
        assert!(parse_record(bad_field)
            .unwrap_err()
            .message
            .contains("unknown record field"));
        let trailing = "{\"tick\":0,\"requests\":[]}gunk";
        assert!(parse_record(trailing)
            .unwrap_err()
            .message
            .contains("trailing data"));
    }

    #[test]
    fn escaped_keys_parse_through_the_shared_scanner() {
        // Keys decode escapes before matching: "\u0074ick" is "tick".
        let line = "{\"\\u0074ick\":4,\"requests\":[]}";
        assert_eq!(parse_record(line), Ok(TraceRecord::new(4, Vec::new())));
    }
}
