//! Workload mixes: probability distributions over request kinds.

use crate::request::RequestKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A probability distribution over [`RequestKind`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    name: String,
    weights: Vec<(RequestKind, f64)>,
}

impl WorkloadMix {
    /// Creates a mix from `(kind, weight)` pairs; weights are normalized.
    ///
    /// # Panics
    /// Panics if no pair has positive weight.
    pub fn new(name: impl Into<String>, weights: Vec<(RequestKind, f64)>) -> Self {
        let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "workload mix must have positive total weight");
        WorkloadMix {
            name: name.into(),
            weights: weights
                .into_iter()
                .map(|(k, w)| (k, w.max(0.0) / total))
                .collect(),
        }
    }

    /// The RUBiS *browsing* mix: read-only interactions only.
    pub fn browsing() -> Self {
        WorkloadMix::new(
            "browsing",
            vec![
                (RequestKind::Home, 0.10),
                (RequestKind::Browse, 0.28),
                (RequestKind::Search, 0.22),
                (RequestKind::ViewItem, 0.25),
                (RequestKind::ViewUser, 0.08),
                (RequestKind::Login, 0.04),
                (RequestKind::AboutMe, 0.03),
            ],
        )
    }

    /// The RUBiS *bidding* mix: roughly 15% read-write interactions, which
    /// is the mix the RUBiS bottleneck studies use.
    pub fn bidding() -> Self {
        WorkloadMix::new(
            "bidding",
            vec![
                (RequestKind::Home, 0.06),
                (RequestKind::Browse, 0.20),
                (RequestKind::Search, 0.16),
                (RequestKind::ViewItem, 0.20),
                (RequestKind::ViewUser, 0.07),
                (RequestKind::Bid, 0.11),
                (RequestKind::Buy, 0.03),
                (RequestKind::Sell, 0.05),
                (RequestKind::Register, 0.02),
                (RequestKind::Login, 0.07),
                (RequestKind::AboutMe, 0.03),
            ],
        )
    }

    /// A write-heavy mix used for stress experiments (statistics staleness
    /// builds up fastest under heavy update traffic, Example 5 of the paper).
    pub fn write_heavy() -> Self {
        WorkloadMix::new(
            "write_heavy",
            vec![
                (RequestKind::Browse, 0.10),
                (RequestKind::Search, 0.10),
                (RequestKind::ViewItem, 0.15),
                (RequestKind::Bid, 0.30),
                (RequestKind::Buy, 0.10),
                (RequestKind::Sell, 0.15),
                (RequestKind::Register, 0.05),
                (RequestKind::Login, 0.05),
            ],
        )
    }

    /// Name of the mix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Normalized `(kind, probability)` pairs.
    pub fn probabilities(&self) -> &[(RequestKind, f64)] {
        &self.weights
    }

    /// Probability of one request kind (0.0 when absent).
    pub fn probability(&self, kind: RequestKind) -> f64 {
        self.weights
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// The fraction of requests that write to the database.
    pub fn write_fraction(&self) -> f64 {
        self.weights
            .iter()
            .filter(|(k, _)| k.is_write())
            .map(|(_, w)| w)
            .sum()
    }

    /// Expected database demand (ms) of one request drawn from the mix.
    pub fn expected_db_demand_ms(&self) -> f64 {
        self.weights.iter().map(|(k, w)| k.demand().db_ms * w).sum()
    }

    /// Samples a request kind.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> RequestKind {
        let mut r: f64 = rng.gen_range(0.0..1.0);
        for (kind, w) in &self.weights {
            if r < *w {
                return *kind;
            }
            r -= *w;
        }
        self.weights.last().expect("nonempty mix").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_mixes_are_normalized() {
        for mix in [
            WorkloadMix::browsing(),
            WorkloadMix::bidding(),
            WorkloadMix::write_heavy(),
        ] {
            let total: f64 = mix.probabilities().iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12, "{}", mix.name());
        }
    }

    #[test]
    fn browsing_mix_has_no_writes_and_bidding_mix_does() {
        assert_eq!(WorkloadMix::browsing().write_fraction(), 0.0);
        let bidding = WorkloadMix::bidding().write_fraction();
        assert!(
            bidding > 0.1 && bidding < 0.3,
            "bidding write fraction {bidding}"
        );
        assert!(WorkloadMix::write_heavy().write_fraction() > 0.5);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mix = WorkloadMix::bidding();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 50_000;
        let mut bids = 0usize;
        for _ in 0..n {
            if mix.sample(&mut rng) == RequestKind::Bid {
                bids += 1;
            }
        }
        let freq = bids as f64 / n as f64;
        assert!((freq - mix.probability(RequestKind::Bid)).abs() < 0.01);
    }

    #[test]
    fn probability_of_absent_kind_is_zero() {
        let mix = WorkloadMix::browsing();
        assert_eq!(mix.probability(RequestKind::Bid), 0.0);
        assert!(mix.probability(RequestKind::Browse) > 0.2);
    }

    #[test]
    fn expected_db_demand_is_positive_and_higher_for_search_heavy_mixes() {
        let browsing = WorkloadMix::browsing().expected_db_demand_ms();
        assert!(browsing > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empty_mix_is_rejected() {
        WorkloadMix::new("bad", vec![(RequestKind::Home, 0.0)]);
    }
}
