//! Preproduction active-stimulation schedules.
//!
//! Section 4.2 of the paper: "it may be inadequate to rely solely on data
//! collected through passive observations of the service in production use
//! ... during preproduction (e.g., testing and deployment), the service can
//! be subjected to different types and rates of workloads, and injected with
//! various failures; while recording data about observed behavior."
//!
//! A [`StimulationSchedule`] is a sequence of [`StimulationPhase`]s, each
//! pairing a workload (mix + arrival process) with an optional note about
//! the faults to inject during the phase; the simulator's scenario runner
//! replays it to bootstrap the synopses with labelled training data.

use crate::arrival::ArrivalProcess;
use crate::mix::WorkloadMix;
use serde::{Deserialize, Serialize};

/// One phase of an active-stimulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StimulationPhase {
    /// Human-readable name of the phase.
    pub name: String,
    /// Workload mix used during the phase.
    pub mix: WorkloadMix,
    /// Arrival process used during the phase.
    pub arrivals: ArrivalProcess,
    /// Length of the phase in ticks.
    pub duration_ticks: u64,
}

impl StimulationPhase {
    /// Creates a phase.
    pub fn new(
        name: impl Into<String>,
        mix: WorkloadMix,
        arrivals: ArrivalProcess,
        duration_ticks: u64,
    ) -> Self {
        StimulationPhase {
            name: name.into(),
            mix,
            arrivals,
            duration_ticks: duration_ticks.max(1),
        }
    }
}

/// A sequence of stimulation phases.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StimulationSchedule {
    phases: Vec<StimulationPhase>,
}

impl StimulationSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase.
    pub fn push(mut self, phase: StimulationPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// All phases, in order.
    pub fn phases(&self) -> &[StimulationPhase] {
        &self.phases
    }

    /// Total duration of the schedule in ticks.
    pub fn total_ticks(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_ticks).sum()
    }

    /// Returns the phase active at `tick` (relative to the start of the
    /// schedule), or `None` if the schedule has ended.
    pub fn phase_at(&self, tick: u64) -> Option<&StimulationPhase> {
        let mut offset = 0u64;
        for phase in &self.phases {
            if tick < offset + phase.duration_ticks {
                return Some(phase);
            }
            offset += phase.duration_ticks;
        }
        None
    }

    /// The standard preproduction schedule: ramp through light browsing,
    /// heavy bidding, a write-heavy stress phase, and a surge, so that the
    /// recorded baselines cover the workload space.
    pub fn standard_preproduction(ticks_per_phase: u64) -> Self {
        StimulationSchedule::new()
            .push(StimulationPhase::new(
                "light_browsing",
                WorkloadMix::browsing(),
                ArrivalProcess::Poisson { rate: 20.0 },
                ticks_per_phase,
            ))
            .push(StimulationPhase::new(
                "steady_bidding",
                WorkloadMix::bidding(),
                ArrivalProcess::Poisson { rate: 40.0 },
                ticks_per_phase,
            ))
            .push(StimulationPhase::new(
                "write_stress",
                WorkloadMix::write_heavy(),
                ArrivalProcess::Poisson { rate: 35.0 },
                ticks_per_phase,
            ))
            .push(StimulationPhase::new(
                "flash_crowd",
                WorkloadMix::bidding(),
                ArrivalProcess::Surge {
                    base: 40.0,
                    factor: 3.0,
                    surge_start: 0,
                    surge_end: ticks_per_phase,
                },
                ticks_per_phase,
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_schedule_covers_four_phases() {
        let s = StimulationSchedule::standard_preproduction(100);
        assert_eq!(s.phases().len(), 4);
        assert_eq!(s.total_ticks(), 400);
        assert_eq!(s.phase_at(0).unwrap().name, "light_browsing");
        assert_eq!(s.phase_at(150).unwrap().name, "steady_bidding");
        assert_eq!(s.phase_at(399).unwrap().name, "flash_crowd");
        assert!(s.phase_at(400).is_none());
    }

    #[test]
    fn empty_schedule_has_no_active_phase() {
        let s = StimulationSchedule::new();
        assert_eq!(s.total_ticks(), 0);
        assert!(s.phase_at(0).is_none());
    }

    #[test]
    fn phase_duration_is_clamped_to_at_least_one() {
        let p = StimulationPhase::new(
            "zero",
            WorkloadMix::browsing(),
            ArrivalProcess::Constant { rate: 1.0 },
            0,
        );
        assert_eq!(p.duration_ticks, 1);
    }

    #[test]
    fn phases_are_traversed_in_insertion_order() {
        let s = StimulationSchedule::new()
            .push(StimulationPhase::new(
                "a",
                WorkloadMix::browsing(),
                ArrivalProcess::Constant { rate: 1.0 },
                10,
            ))
            .push(StimulationPhase::new(
                "b",
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 2.0 },
                10,
            ));
        assert_eq!(s.phase_at(9).unwrap().name, "a");
        assert_eq!(s.phase_at(10).unwrap().name, "b");
    }
}
