//! The pluggable workload abstraction: [`TraceSource`].
//!
//! Every consumer of workload traffic — the scenario runner, the harness
//! builder, the fleet engine — is written against this trait rather than a
//! concrete generator, so synthetic arrivals ([`crate::TraceGenerator`]),
//! recorded traces replayed with per-replica phase shifts
//! ([`crate::ReplaySource`]), and flash-crowd storms
//! ([`crate::BurstSource`]) are interchangeable.

use crate::request::Request;
use std::fmt;

/// A source of per-tick request batches.
///
/// Implementations must be deterministic: after [`TraceSource::reset`], the
/// same sequence of `next_tick` calls must yield the same batches, so that
/// scenario fingerprints are reproducible and fleets can fan one source out
/// to many replicas via [`TraceSource::clone_box`].
///
/// # Implementing the trait
///
/// ```
/// use selfheal_workload::{Request, RequestKind, TraceSource};
///
/// /// Exactly one Browse request per tick — the simplest useful source.
/// #[derive(Debug, Clone)]
/// struct DripSource {
///     next_id: u64,
/// }
///
/// impl TraceSource for DripSource {
///     fn next_tick(&mut self, tick: u64) -> Vec<Request> {
///         let id = self.next_id;
///         self.next_id += 1;
///         vec![Request::new(id, RequestKind::Browse, tick)]
///     }
///
///     fn reset(&mut self) {
///         self.next_id = 0;
///     }
///
///     fn clone_box(&self) -> Box<dyn TraceSource> {
///         Box::new(self.clone())
///     }
/// }
///
/// let mut source = DripSource { next_id: 0 };
/// let batch = source.next_tick(0);
/// assert_eq!(batch.len(), 1);
/// assert_eq!(batch[0].kind, RequestKind::Browse);
///
/// // A reset clone replays the stream from the start.
/// let mut replica = source.clone_box();
/// replica.reset();
/// assert_eq!(replica.next_tick(0), {
///     source.reset();
///     source.next_tick(0)
/// });
/// ```
pub trait TraceSource: fmt::Debug + Send {
    /// Returns the batch of requests arriving at `tick`.
    ///
    /// Callers advance `tick` monotonically from zero; sources may keep an
    /// internal cursor instead of trusting the argument, but the emitted
    /// requests' `arrival_tick` must equal the `tick` they were asked for.
    fn next_tick(&mut self, tick: u64) -> Vec<Request>;

    /// Rewinds the source to its initial state so the stream replays from
    /// the first tick (used when fanning one configured source out to many
    /// replicas, and by record-then-replay flows).
    fn reset(&mut self);

    /// Clones the source behind a box, preserving its current state.
    ///
    /// Replica fan-out typically follows a clone with [`TraceSource::reset`]
    /// (and, for replays, a phase shift) so every replica starts from the
    /// beginning of its own stream.
    fn clone_box(&self) -> Box<dyn TraceSource>;
}

impl Clone for Box<dyn TraceSource> {
    fn clone(&self) -> Self {
        self.as_ref().clone_box()
    }
}

impl TraceSource for Box<dyn TraceSource> {
    fn next_tick(&mut self, tick: u64) -> Vec<Request> {
        self.as_mut().next_tick(tick)
    }

    fn reset(&mut self) {
        self.as_mut().reset();
    }

    fn clone_box(&self) -> Box<dyn TraceSource> {
        self.as_ref().clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::mix::WorkloadMix;
    use crate::trace::TraceGenerator;

    #[test]
    fn boxed_sources_delegate_and_clone() {
        let mut source: Box<dyn TraceSource> = Box::new(TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 5.0 },
            17,
        ));
        let first = source.next_tick(0);
        assert_eq!(first.len(), 5);

        let mut clone = source.clone();
        // The clone continues from the same state...
        assert_eq!(source.next_tick(1), clone.next_tick(1));
        // ...and a reset rewinds it to the beginning of the stream.
        clone.reset();
        assert_eq!(clone.next_tick(0), first);
    }
}
