//! Request types of the RUBiS-like auction service.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Nominal resource demand a single request places on each tier, in
//  milliseconds of service time at nominal capacity.
/// The simulator scales these by tier capacity and congestion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierDemand {
    /// Service demand at the web tier (ms).
    pub web_ms: f64,
    /// Service demand at the application (EJB) tier (ms).
    pub app_ms: f64,
    /// Service demand at the database tier (ms).
    pub db_ms: f64,
    /// Number of database rows touched (drives buffer/contention effects).
    pub db_rows: f64,
    /// Whether the request writes to the database.
    pub writes: bool,
}

impl TierDemand {
    /// Total nominal demand across all tiers (ms).
    pub fn total_ms(&self) -> f64 {
        self.web_ms + self.app_ms + self.db_ms
    }
}

/// The interaction types of the auction site.
///
/// The set mirrors the RUBiS servlet catalogue at the granularity that
/// matters for tier demands: read-only browsing interactions are cheap and
/// DB-read-heavy, bidding/selling interactions invoke more EJB logic and
/// write to the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RequestKind {
    /// Home page.
    Home,
    /// Browse categories / regions.
    Browse,
    /// Search items by category or keyword.
    Search,
    /// View one item's details.
    ViewItem,
    /// View a user's profile and comments.
    ViewUser,
    /// Place a bid (write).
    Bid,
    /// Buy-it-now purchase (write).
    Buy,
    /// List a new item for sale (write).
    Sell,
    /// Register a new user (write).
    Register,
    /// Log in.
    Login,
    /// The "About Me" summary page (joins across many tables).
    AboutMe,
}

impl RequestKind {
    /// All request kinds.
    pub const ALL: [RequestKind; 11] = [
        RequestKind::Home,
        RequestKind::Browse,
        RequestKind::Search,
        RequestKind::ViewItem,
        RequestKind::ViewUser,
        RequestKind::Bid,
        RequestKind::Buy,
        RequestKind::Sell,
        RequestKind::Register,
        RequestKind::Login,
        RequestKind::AboutMe,
    ];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Home => "home",
            RequestKind::Browse => "browse",
            RequestKind::Search => "search",
            RequestKind::ViewItem => "view_item",
            RequestKind::ViewUser => "view_user",
            RequestKind::Bid => "bid",
            RequestKind::Buy => "buy",
            RequestKind::Sell => "sell",
            RequestKind::Register => "register",
            RequestKind::Login => "login",
            RequestKind::AboutMe => "about_me",
        }
    }

    /// Inverse of [`RequestKind::label`]: parses the stable lowercase label
    /// back to a kind (`None` for unknown labels).  The trace codec relies
    /// on `from_label(label(k)) == Some(k)` for every kind.
    pub fn from_label(label: &str) -> Option<RequestKind> {
        RequestKind::ALL
            .iter()
            .copied()
            .find(|k| k.label() == label)
    }

    /// Stable numeric code (its index in [`RequestKind::ALL`]).
    pub fn code(self) -> usize {
        RequestKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind in ALL")
    }

    /// Whether the interaction writes to the database.
    pub fn is_write(self) -> bool {
        self.demand().writes
    }

    /// Nominal per-tier demand of one request of this kind.
    ///
    /// Values are loosely calibrated to the RUBiS bottleneck
    /// characterization literature: browsing interactions are dominated by
    /// database reads, bid/sell interactions exercise the EJB tier and write
    /// to the database, and `AboutMe` is the heavyweight multi-join page.
    pub fn demand(self) -> TierDemand {
        match self {
            RequestKind::Home => TierDemand {
                web_ms: 2.0,
                app_ms: 1.0,
                db_ms: 0.5,
                db_rows: 1.0,
                writes: false,
            },
            RequestKind::Browse => TierDemand {
                web_ms: 3.0,
                app_ms: 4.0,
                db_ms: 8.0,
                db_rows: 40.0,
                writes: false,
            },
            RequestKind::Search => TierDemand {
                web_ms: 3.0,
                app_ms: 5.0,
                db_ms: 12.0,
                db_rows: 80.0,
                writes: false,
            },
            RequestKind::ViewItem => TierDemand {
                web_ms: 2.0,
                app_ms: 3.0,
                db_ms: 6.0,
                db_rows: 15.0,
                writes: false,
            },
            RequestKind::ViewUser => TierDemand {
                web_ms: 2.0,
                app_ms: 3.0,
                db_ms: 7.0,
                db_rows: 20.0,
                writes: false,
            },
            RequestKind::Bid => TierDemand {
                web_ms: 3.0,
                app_ms: 8.0,
                db_ms: 10.0,
                db_rows: 12.0,
                writes: true,
            },
            RequestKind::Buy => TierDemand {
                web_ms: 3.0,
                app_ms: 7.0,
                db_ms: 9.0,
                db_rows: 10.0,
                writes: true,
            },
            RequestKind::Sell => TierDemand {
                web_ms: 4.0,
                app_ms: 9.0,
                db_ms: 11.0,
                db_rows: 8.0,
                writes: true,
            },
            RequestKind::Register => TierDemand {
                web_ms: 3.0,
                app_ms: 5.0,
                db_ms: 6.0,
                db_rows: 4.0,
                writes: true,
            },
            RequestKind::Login => TierDemand {
                web_ms: 2.0,
                app_ms: 3.0,
                db_ms: 3.0,
                db_rows: 2.0,
                writes: false,
            },
            RequestKind::AboutMe => TierDemand {
                web_ms: 4.0,
                app_ms: 10.0,
                db_ms: 20.0,
                db_rows: 150.0,
                writes: false,
            },
        }
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One request instance submitted to the service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id within the run.
    pub id: u64,
    /// Interaction type.
    pub kind: RequestKind,
    /// Tick at which the request arrived.
    pub arrival_tick: u64,
}

impl Request {
    /// Creates a request.
    pub fn new(id: u64, kind: RequestKind, arrival_tick: u64) -> Self {
        Request {
            id,
            kind,
            arrival_tick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_codes_are_unique_and_stable() {
        let mut labels: Vec<&str> = RequestKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), RequestKind::ALL.len());
        for (i, k) in RequestKind::ALL.iter().enumerate() {
            assert_eq!(k.code(), i);
        }
    }

    #[test]
    fn labels_round_trip() {
        for kind in RequestKind::ALL {
            assert_eq!(RequestKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(RequestKind::from_label("checkout"), None);
    }

    #[test]
    fn write_interactions_are_marked() {
        assert!(RequestKind::Bid.is_write());
        assert!(RequestKind::Sell.is_write());
        assert!(!RequestKind::Browse.is_write());
        assert!(!RequestKind::AboutMe.is_write());
    }

    #[test]
    fn demands_are_positive_and_about_me_is_heaviest_on_db() {
        for kind in RequestKind::ALL {
            let d = kind.demand();
            assert!(d.web_ms > 0.0 && d.app_ms > 0.0 && d.db_ms > 0.0, "{kind}");
            assert!(d.total_ms() >= d.db_ms);
        }
        let about_me = RequestKind::AboutMe.demand().db_ms;
        for kind in RequestKind::ALL {
            assert!(about_me >= kind.demand().db_ms);
        }
    }

    #[test]
    fn request_construction_keeps_fields() {
        let r = Request::new(7, RequestKind::Bid, 42);
        assert_eq!(r.id, 7);
        assert_eq!(r.kind, RequestKind::Bid);
        assert_eq!(r.arrival_tick, 42);
    }
}
