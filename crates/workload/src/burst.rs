//! Flash-crowd / fault-storm workload: [`BurstSource`].
//!
//! The paper motivates self-healing with the Walmart.com outage "during the
//! 2006 Thanksgiving traffic surge".  [`crate::ArrivalProcess::Surge`]
//! models one such surge; `BurstSource` generalizes it to a *recurring*
//! storm — every `period_ticks`, the arrival rate multiplies by
//! `burst_factor` for `burst_ticks` — which is the workload shape fleet
//! scenarios use to study correlated load spikes (and, with a per-replica
//! phase shift, staggered ones).

use crate::arrival::ArrivalProcess;
use crate::mix::WorkloadMix;
use crate::request::Request;
use crate::source::TraceSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Poisson workload whose rate spikes periodically.
#[derive(Debug, Clone)]
pub struct BurstSource {
    mix: WorkloadMix,
    base_rate: f64,
    burst_factor: f64,
    period_ticks: u64,
    burst_ticks: u64,
    phase: u64,
    seed: u64,
    rng: StdRng,
    next_request_id: u64,
}

impl BurstSource {
    /// Creates a burst source: Poisson arrivals at `base_rate` requests per
    /// tick, multiplied by `burst_factor` for the first `burst_ticks` of
    /// every `period_ticks`-long cycle.
    ///
    /// # Panics
    /// Panics if `base_rate` is not positive, `burst_factor` is below 1, or
    /// the burst is as long as (or longer than) the period.
    pub fn new(
        mix: WorkloadMix,
        base_rate: f64,
        burst_factor: f64,
        period_ticks: u64,
        burst_ticks: u64,
        seed: u64,
    ) -> Self {
        assert!(base_rate > 0.0, "burst base rate must be positive");
        assert!(burst_factor >= 1.0, "burst factor must be at least 1");
        assert!(
            burst_ticks < period_ticks,
            "burst ({burst_ticks} ticks) must be shorter than its period ({period_ticks} ticks)"
        );
        BurstSource {
            mix,
            base_rate,
            burst_factor,
            period_ticks,
            burst_ticks,
            phase: 0,
            seed,
            rng: StdRng::seed_from_u64(seed),
            next_request_id: 0,
        }
    }

    /// Shifts the storm schedule by `phase` ticks (a fleet can stagger its
    /// replicas' storms instead of taking every spike in lockstep).
    pub fn with_phase(mut self, phase: u64) -> Self {
        self.phase = phase;
        self
    }

    /// Whether `tick` falls inside a burst window.
    pub fn in_burst(&self, tick: u64) -> bool {
        (tick + self.phase) % self.period_ticks < self.burst_ticks
    }

    /// The mean arrival rate at `tick` (requests per tick).
    pub fn rate_at(&self, tick: u64) -> f64 {
        if self.in_burst(tick) {
            self.base_rate * self.burst_factor
        } else {
            self.base_rate
        }
    }

    /// The workload mix requests are drawn from.
    pub fn mix(&self) -> &WorkloadMix {
        &self.mix
    }
}

impl TraceSource for BurstSource {
    fn next_tick(&mut self, tick: u64) -> Vec<Request> {
        let arrivals = ArrivalProcess::Poisson {
            rate: self.rate_at(tick),
        };
        let count = arrivals.arrivals(tick, &mut self.rng);
        let mut requests = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let kind = self.mix.sample(&mut self.rng);
            requests.push(Request::new(self.next_request_id, kind, tick));
            self.next_request_id += 1;
        }
        requests
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.next_request_id = 0;
    }

    fn clone_box(&self) -> Box<dyn TraceSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(seed: u64) -> BurstSource {
        BurstSource::new(WorkloadMix::bidding(), 10.0, 5.0, 100, 20, seed)
    }

    #[test]
    fn storms_recur_on_schedule() {
        let s = source(1);
        assert!(s.in_burst(0));
        assert!(s.in_burst(19));
        assert!(!s.in_burst(20));
        assert!(!s.in_burst(99));
        assert!(s.in_burst(100));
        assert_eq!(s.rate_at(5), 50.0);
        assert_eq!(s.rate_at(50), 10.0);
    }

    #[test]
    fn phase_shift_staggers_the_storm() {
        let shifted = source(1).with_phase(20);
        assert!(!shifted.in_burst(0), "phase 20 starts outside the burst");
        assert!(
            shifted.in_burst(80),
            "tick 80 + phase 20 wraps into a burst"
        );
    }

    #[test]
    fn burst_windows_carry_more_traffic() {
        let mut s = source(3);
        let mut burst_total = 0usize;
        let mut calm_total = 0usize;
        for tick in 0..500 {
            let n = s.next_tick(tick).len();
            if s.in_burst(tick) {
                burst_total += n;
            } else {
                calm_total += n;
            }
        }
        // 100 burst ticks at ~50/tick vs 400 calm ticks at ~10/tick.
        assert!(burst_total as f64 > 2.0 * calm_total as f64 / 4.0);
        let burst_mean = burst_total as f64 / 100.0;
        let calm_mean = calm_total as f64 / 400.0;
        assert!(
            burst_mean > 3.0 * calm_mean,
            "burst mean {burst_mean} vs calm mean {calm_mean}"
        );
    }

    #[test]
    fn reset_replays_identically() {
        let mut s = source(9);
        let first: Vec<Vec<Request>> = (0..30).map(|t| s.next_tick(t)).collect();
        s.reset();
        let second: Vec<Vec<Request>> = (0..30).map(|t| s.next_tick(t)).collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "shorter than its period")]
    fn burst_longer_than_period_is_rejected() {
        BurstSource::new(WorkloadMix::bidding(), 10.0, 2.0, 50, 50, 0);
    }
}
