//! Per-tick request trace generation.

use crate::arrival::ArrivalProcess;
use crate::mix::WorkloadMix;
use crate::request::Request;
use crate::source::TraceSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates the batch of requests arriving in each tick by combining a
/// [`WorkloadMix`] with an [`ArrivalProcess`].
///
/// The generator owns its RNG (seeded at construction) so traces are
/// reproducible and independent of any other randomness in the simulation.
/// It is the synthetic implementation of [`TraceSource`]; recorded and
/// bursty sources live in [`crate::replay`] and [`crate::burst`].
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    mix: WorkloadMix,
    arrivals: ArrivalProcess,
    seed: u64,
    rng: StdRng,
    next_request_id: u64,
    generated: u64,
}

impl TraceGenerator {
    /// Creates a generator.
    pub fn new(mix: WorkloadMix, arrivals: ArrivalProcess, seed: u64) -> Self {
        TraceGenerator {
            mix,
            arrivals,
            seed,
            rng: StdRng::seed_from_u64(seed),
            next_request_id: 0,
            generated: 0,
        }
    }

    /// The seed the generator was built with (and that
    /// [`TraceSource::reset`] rewinds to).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current workload mix.
    pub fn mix(&self) -> &WorkloadMix {
        &self.mix
    }

    /// The current arrival process.
    pub fn arrivals(&self) -> &ArrivalProcess {
        &self.arrivals
    }

    /// Replaces the workload mix (e.g. when an active-stimulation schedule
    /// moves to its next phase, or to model workload drift in production).
    pub fn set_mix(&mut self, mix: WorkloadMix) {
        self.mix = mix;
    }

    /// Replaces the arrival process.
    pub fn set_arrivals(&mut self, arrivals: ArrivalProcess) {
        self.arrivals = arrivals;
    }

    /// Total number of requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Generates the requests arriving at `tick`.
    pub fn tick(&mut self, tick: u64) -> Vec<Request> {
        let count = self.arrivals.arrivals(tick, &mut self.rng);
        let mut requests = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let kind = self.mix.sample(&mut self.rng);
            requests.push(Request::new(self.next_request_id, kind, tick));
            self.next_request_id += 1;
            self.generated += 1;
        }
        requests
    }
}

impl TraceSource for TraceGenerator {
    fn next_tick(&mut self, tick: u64) -> Vec<Request> {
        self.tick(tick)
    }

    /// Reseeds the RNG and rewinds the request-id counters.  The *current*
    /// mix and arrival process are kept: a generator mutated mid-run (e.g.
    /// by a stimulation schedule) replays from its latest configuration.
    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.next_request_id = 0;
        self.generated = 0;
    }

    fn clone_box(&self) -> Box<dyn TraceSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    #[test]
    fn reset_replays_the_same_trace() {
        let mut g = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Poisson { rate: 15.0 },
            8,
        );
        let first: Vec<Vec<Request>> = (0..10).map(|t| g.next_tick(t)).collect();
        g.reset();
        let second: Vec<Vec<Request>> = (0..10).map(|t| g.next_tick(t)).collect();
        assert_eq!(first, second);
        assert_eq!(g.seed(), 8);
    }

    #[test]
    fn trace_is_deterministic_for_a_seed() {
        let mut a = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Poisson { rate: 10.0 },
            42,
        );
        let mut b = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Poisson { rate: 10.0 },
            42,
        );
        for t in 0..20 {
            assert_eq!(a.tick(t), b.tick(t));
        }
        assert_eq!(a.generated(), b.generated());
    }

    #[test]
    fn request_ids_are_unique_and_monotone() {
        let mut g = TraceGenerator::new(
            WorkloadMix::browsing(),
            ArrivalProcess::Constant { rate: 7.0 },
            1,
        );
        let mut last_id = None;
        for t in 0..10 {
            for r in g.tick(t) {
                if let Some(prev) = last_id {
                    assert!(r.id > prev);
                }
                last_id = Some(r.id);
                assert_eq!(r.arrival_tick, t);
            }
        }
        assert_eq!(g.generated(), 70);
    }

    #[test]
    fn changing_the_mix_changes_the_request_kinds() {
        let mut g = TraceGenerator::new(
            WorkloadMix::browsing(),
            ArrivalProcess::Constant { rate: 50.0 },
            3,
        );
        let browsing: Vec<Request> = g.tick(0);
        assert!(browsing.iter().all(|r| !r.kind.is_write()));
        g.set_mix(WorkloadMix::write_heavy());
        let writes: usize = g.tick(1).iter().filter(|r| r.kind.is_write()).count();
        assert!(
            writes > 10,
            "write-heavy mix should produce many writes, got {writes}"
        );
    }

    #[test]
    fn changing_arrivals_changes_the_volume() {
        let mut g = TraceGenerator::new(
            WorkloadMix::browsing(),
            ArrivalProcess::Constant { rate: 5.0 },
            4,
        );
        assert_eq!(g.tick(0).len(), 5);
        g.set_arrivals(ArrivalProcess::Constant { rate: 50.0 });
        assert_eq!(g.tick(1).len(), 50);
        assert_eq!(g.arrivals(), &ArrivalProcess::Constant { rate: 50.0 });
        assert_eq!(g.mix().name(), "browsing");
        // Silence the unused-import warning path: kinds come from the mix.
        assert!(g.tick(2).iter().all(|r| RequestKind::ALL.contains(&r.kind)));
    }
}
