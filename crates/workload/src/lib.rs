//! # selfheal-workload
//!
//! Workload generation for a RUBiS-like multitier auction service.
//!
//! The paper's running example (Example 1) is RUBiS — "an auction site
//! written as a J2EE application and modeled after eBay" — running on JBoss
//! with a MySQL database tier.  This crate generates the request streams the
//! simulated service processes:
//!
//! * [`RequestKind`] — the auction-site interaction types (browse, search,
//!   view item, bid, buy-now, sell, register, login, about-me), each with a
//!   nominal demand profile across the three tiers.
//! * [`WorkloadMix`] — a probability distribution over request kinds (the
//!   standard RUBiS *browsing* and *bidding* mixes plus custom mixes).
//! * [`ArrivalProcess`] — open-loop arrival models: constant rate, Poisson,
//!   diurnal pattern, and a flash-crowd *surge* (the paper's Walmart.com
//!   Thanksgiving example is exactly such a surge).
//! * [`SessionPool`] — a simple closed-loop session model with think times,
//!   used by the closed-loop examples.
//! * [`stimulation`] — preproduction *active stimulation* schedules
//!   (Section 4.2: subject the service to "different types and rates of
//!   workloads ... while recording data about observed behavior").
//! * [`TraceSource`] — the pluggable per-tick workload abstraction every
//!   consumer (scenario runner, harness, fleet engine) is written against.
//! * [`TraceGenerator`] — the synthetic [`TraceSource`]: ties a mix and an
//!   arrival process together and emits per-tick request batches.
//! * [`RecordedTrace`] / [`ReplaySource`] — capture any source tick-by-tick,
//!   persist it as JSON-lines ([`codec`]), and replay it with loop/truncate
//!   semantics and per-replica phase shifts.
//! * [`BurstSource`] — recurring flash-crowd / fault-storm spikes on top of
//!   a Poisson baseline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod burst;
pub mod codec;
pub mod mix;
pub mod replay;
pub mod request;
pub mod session;
pub mod source;
pub mod stimulation;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use burst::BurstSource;
pub use codec::{CodecError, TraceRecord};
pub use mix::WorkloadMix;
pub use replay::{RecordedTrace, ReplayMode, ReplaySource};
pub use request::{Request, RequestKind, TierDemand};
pub use session::SessionPool;
pub use source::TraceSource;
pub use stimulation::{StimulationPhase, StimulationSchedule};
pub use trace::TraceGenerator;
