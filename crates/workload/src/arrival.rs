//! Open-loop arrival processes.
//!
//! The number of requests arriving in each tick is drawn from one of these
//! processes.  A diurnal pattern and a flash-crowd surge are included
//! because both matter to the paper's motivation: the Walmart.com outage it
//! cites happened "during the 2006 Thanksgiving traffic surge", and a
//! bottlenecked tier only shows up when load approaches capacity.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How many requests arrive per tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exactly `rate` requests per tick.
    Constant {
        /// Requests per tick.
        rate: f64,
    },
    /// Poisson arrivals with mean `rate` requests per tick.
    Poisson {
        /// Mean requests per tick.
        rate: f64,
    },
    /// A sinusoidal diurnal pattern: mean `base` requests per tick, swinging
    /// by `amplitude` over a period of `period_ticks`.
    Diurnal {
        /// Mean requests per tick.
        base: f64,
        /// Peak-to-mean swing (requests per tick).
        amplitude: f64,
        /// Length of one day, in ticks.
        period_ticks: u64,
    },
    /// A flash crowd: `base` requests per tick, multiplied by `factor`
    /// between `surge_start` and `surge_end`.
    Surge {
        /// Baseline requests per tick.
        base: f64,
        /// Multiplier during the surge.
        factor: f64,
        /// First tick of the surge.
        surge_start: u64,
        /// First tick after the surge.
        surge_end: u64,
    },
}

impl ArrivalProcess {
    /// The expected arrival rate at `tick` (requests per tick).
    pub fn mean_rate(&self, tick: u64) -> f64 {
        match self {
            ArrivalProcess::Constant { rate } | ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Diurnal {
                base,
                amplitude,
                period_ticks,
            } => {
                let period = (*period_ticks).max(1) as f64;
                let phase = 2.0 * std::f64::consts::PI * (tick as f64 % period) / period;
                (base + amplitude * phase.sin()).max(0.0)
            }
            ArrivalProcess::Surge {
                base,
                factor,
                surge_start,
                surge_end,
            } => {
                if tick >= *surge_start && tick < *surge_end {
                    base * factor
                } else {
                    *base
                }
            }
        }
    }

    /// Samples the number of arrivals in the tick.
    pub fn arrivals<R: Rng + ?Sized>(&self, tick: u64, rng: &mut R) -> u64 {
        let mean = self.mean_rate(tick);
        match self {
            ArrivalProcess::Constant { .. } | ArrivalProcess::Surge { .. } => mean.round() as u64,
            ArrivalProcess::Poisson { .. } | ArrivalProcess::Diurnal { .. } => {
                sample_poisson(mean, rng)
            }
        }
    }
}

/// Samples a Poisson-distributed count with the given mean.
///
/// Uses Knuth's product-of-uniforms method for small means and a normal
/// approximation (rounded, clamped at zero) for large means; both are
/// adequate for workload generation.
fn sample_poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation: sum of 12 uniforms minus 6 ~ N(0,1).
        let z: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
        return (mean + z * mean.sqrt()).round().max(0.0) as u64;
    }
    let threshold = (-mean).exp();
    let mut count = 0u64;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.gen_range(0.0..1.0_f64);
        if product <= threshold {
            return count;
        }
        count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_rate_is_exact() {
        let p = ArrivalProcess::Constant { rate: 25.0 };
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..10 {
            assert_eq!(p.arrivals(t, &mut rng), 25);
        }
    }

    #[test]
    fn poisson_mean_is_close_to_rate() {
        let p = ArrivalProcess::Poisson { rate: 12.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let total: u64 = (0..n).map(|t| p.arrivals(t, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 12.0).abs() < 0.2, "poisson mean {mean}");
    }

    #[test]
    fn large_mean_poisson_uses_normal_approximation_sanely() {
        let p = ArrivalProcess::Poisson { rate: 200.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 5_000;
        let total: u64 = (0..n).map(|t| p.arrivals(t, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 200.0).abs() < 3.0, "large-mean poisson mean {mean}");
    }

    #[test]
    fn diurnal_pattern_peaks_and_troughs() {
        let p = ArrivalProcess::Diurnal {
            base: 50.0,
            amplitude: 30.0,
            period_ticks: 86_400,
        };
        let peak = p.mean_rate(86_400 / 4);
        let trough = p.mean_rate(3 * 86_400 / 4);
        assert!((peak - 80.0).abs() < 1.0);
        assert!((trough - 20.0).abs() < 1.0);
        // Never negative even with amplitude > base.
        let extreme = ArrivalProcess::Diurnal {
            base: 10.0,
            amplitude: 50.0,
            period_ticks: 100,
        };
        assert_eq!(extreme.mean_rate(75), 0.0);
    }

    #[test]
    fn surge_multiplies_rate_inside_window_only() {
        let p = ArrivalProcess::Surge {
            base: 40.0,
            factor: 5.0,
            surge_start: 100,
            surge_end: 200,
        };
        assert_eq!(p.mean_rate(50), 40.0);
        assert_eq!(p.mean_rate(150), 200.0);
        assert_eq!(p.mean_rate(200), 40.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(p.arrivals(150, &mut rng), 200);
    }

    #[test]
    fn zero_mean_poisson_yields_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        assert_eq!(sample_poisson(-3.0, &mut rng), 0);
    }
}
