//! Closed-loop session model.
//!
//! RUBiS drives the service with emulated user sessions: each user issues a
//! request, waits for the response, "thinks" for a while, and issues the
//! next request.  The closed-loop model matters for self-healing experiments
//! because throughput collapses differently under closed-loop load (users
//! back off when the service slows down) than under open-loop load (requests
//! keep arriving and queues explode).

use crate::mix::WorkloadMix;
use crate::request::RequestKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// State of one emulated user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum UserState {
    /// Thinking; will issue the next request at the stored tick.
    ThinkingUntil(u64),
    /// Waiting for an outstanding request to complete.
    WaitingForResponse,
}

/// A pool of emulated users driving the service in closed loop.
#[derive(Debug, Clone)]
pub struct SessionPool {
    mix: WorkloadMix,
    think_time_ticks: u64,
    users: Vec<UserState>,
}

impl SessionPool {
    /// Creates a pool of `users` emulated users with the given mix and mean
    /// think time (ticks).
    pub fn new(users: usize, mix: WorkloadMix, think_time_ticks: u64) -> Self {
        SessionPool {
            mix,
            think_time_ticks: think_time_ticks.max(1),
            users: vec![UserState::ThinkingUntil(0); users],
        }
    }

    /// Number of emulated users.
    pub fn users(&self) -> usize {
        self.users.len()
    }

    /// Number of users currently waiting for a response.
    pub fn waiting(&self) -> usize {
        self.users
            .iter()
            .filter(|u| matches!(u, UserState::WaitingForResponse))
            .count()
    }

    /// Advances to `tick`: users whose think time has expired issue a new
    /// request.  Returns the kinds of the issued requests.
    pub fn issue_requests<R: Rng + ?Sized>(&mut self, tick: u64, rng: &mut R) -> Vec<RequestKind> {
        let mut issued = Vec::new();
        for user in &mut self.users {
            if let UserState::ThinkingUntil(t) = user {
                if *t <= tick {
                    issued.push(self.mix.sample(rng));
                    *user = UserState::WaitingForResponse;
                }
            }
        }
        issued
    }

    /// Records that `count` outstanding requests completed at `tick`; that
    /// many waiting users re-enter the thinking state with an exponential-ish
    /// think time around the configured mean.
    pub fn complete_requests<R: Rng + ?Sized>(&mut self, count: usize, tick: u64, rng: &mut R) {
        let mut remaining = count;
        for user in &mut self.users {
            if remaining == 0 {
                break;
            }
            if matches!(user, UserState::WaitingForResponse) {
                // Geometric-ish think time: uniform in [0.5, 1.5] × mean.
                let think = (self.think_time_ticks as f64 * rng.gen_range(0.5..1.5)).round() as u64;
                *user = UserState::ThinkingUntil(tick + think.max(1));
                remaining -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_users_issue_initially_then_wait() {
        let mut pool = SessionPool::new(10, WorkloadMix::browsing(), 5);
        let mut rng = StdRng::seed_from_u64(1);
        let issued = pool.issue_requests(0, &mut rng);
        assert_eq!(issued.len(), 10);
        assert_eq!(pool.waiting(), 10);
        // No one issues again until responses come back.
        assert!(pool.issue_requests(1, &mut rng).is_empty());
    }

    #[test]
    fn completions_return_users_to_thinking() {
        let mut pool = SessionPool::new(4, WorkloadMix::bidding(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        pool.issue_requests(0, &mut rng);
        pool.complete_requests(2, 10, &mut rng);
        assert_eq!(pool.waiting(), 2);
        // The two released users think for at least one tick, then reissue.
        let issued_soon = pool.issue_requests(11, &mut rng);
        assert!(issued_soon.len() <= 2);
        let issued_later = pool.issue_requests(20, &mut rng);
        assert_eq!(issued_soon.len() + issued_later.len(), 2);
    }

    #[test]
    fn completing_more_than_waiting_is_safe() {
        let mut pool = SessionPool::new(3, WorkloadMix::browsing(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        pool.issue_requests(0, &mut rng);
        pool.complete_requests(100, 5, &mut rng);
        assert_eq!(pool.waiting(), 0);
        assert_eq!(pool.users(), 3);
    }

    #[test]
    fn closed_loop_throughput_is_bounded_by_population() {
        let mut pool = SessionPool::new(5, WorkloadMix::browsing(), 1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut total_issued = 0usize;
        for tick in 0..50 {
            total_issued += pool.issue_requests(tick, &mut rng).len();
            // Immediately complete everything outstanding.
            pool.complete_requests(pool.waiting(), tick, &mut rng);
        }
        // With think time ≥ 1 tick and instant responses, each user can issue
        // at most one request every other tick.
        assert!(total_issued <= 5 * 50);
        assert!(total_issued > 50);
    }
}
