//! Control-theoretic measurements of the healing loop (Section 5.4).
//!
//! "Since a self-healing service makes decisions based on data it observes
//! about its own activity, the system design and implementation should
//! consider control-theoretic issues like stability, steady-state error,
//! settling times, and overshooting."
//!
//! These routines analyze a response-time (or any metric) trajectory around
//! a disturbance: how long the metric stays outside the tolerance band after
//! the disturbance (settling time), how far it overshoots the reference
//! (overshoot), how much residual deviation remains once settled
//! (steady-state error), and how many times it re-crosses the band
//! boundaries (an oscillation count that flags instability — e.g. a healer
//! that keeps applying and undoing fixes).

/// Analysis of one disturbance/response trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlAnalysis {
    /// Ticks from the disturbance until the metric last left the tolerance
    /// band (`None` when the metric never settles within the trace).
    pub settling_ticks: Option<u64>,
    /// Maximum value reached relative to the reference (e.g. 3.0 = the
    /// metric peaked at 3× the reference).
    pub overshoot_ratio: f64,
    /// Mean absolute relative deviation from the reference after settling
    /// (0.0 when the metric never settles).
    pub steady_state_error: f64,
    /// Number of times the trajectory re-entered and then left the tolerance
    /// band — a proxy for oscillation / instability.
    pub oscillations: u32,
}

impl ControlAnalysis {
    /// A loop is considered stable when it settles and does not oscillate
    /// more than once.
    pub fn is_stable(&self) -> bool {
        self.settling_ticks.is_some() && self.oscillations <= 1
    }
}

/// Analyzes `trajectory` (one value per tick, starting at the disturbance)
/// against a `reference` value and a relative `tolerance` band
/// (e.g. 0.2 = ±20% of the reference counts as settled).
///
/// # Panics
/// Panics if `reference` is not positive or `tolerance` is not in `(0, 1)`.
pub fn analyze(trajectory: &[f64], reference: f64, tolerance: f64) -> ControlAnalysis {
    assert!(reference > 0.0, "reference must be positive");
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tolerance must be in (0, 1)"
    );
    if trajectory.is_empty() {
        return ControlAnalysis {
            settling_ticks: Some(0),
            overshoot_ratio: 1.0,
            steady_state_error: 0.0,
            oscillations: 0,
        };
    }

    let upper = reference * (1.0 + tolerance);
    let lower = reference * (1.0 - tolerance);
    let in_band = |v: f64| v <= upper && v >= lower;

    // Settling time: the last index at which the value is out of band; the
    // trajectory is "settled" from the next index onward.
    let last_out = trajectory.iter().rposition(|v| !in_band(*v));
    let settling_ticks = match last_out {
        None => Some(0),
        Some(i) if i + 1 < trajectory.len() => Some((i + 1) as u64),
        Some(_) => None,
    };

    let peak = trajectory.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let overshoot_ratio = (peak / reference).max(0.0);

    let steady_state_error = match settling_ticks {
        Some(t) if (t as usize) < trajectory.len() => {
            let tail = &trajectory[t as usize..];
            tail.iter()
                .map(|v| (v - reference).abs() / reference)
                .sum::<f64>()
                / tail.len() as f64
        }
        _ => 0.0,
    };

    // Oscillations: count transitions from in-band back to out-of-band.
    let mut oscillations = 0u32;
    let mut was_in_band = in_band(trajectory[0]);
    for v in &trajectory[1..] {
        let now_in_band = in_band(*v);
        if was_in_band && !now_in_band {
            oscillations += 1;
        }
        was_in_band = now_in_band;
    }

    ControlAnalysis {
        settling_ticks,
        overshoot_ratio,
        steady_state_error,
        oscillations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_damped_recovery_settles_without_oscillation() {
        // Spike to 5x the reference, then exponential recovery.
        let reference = 100.0;
        let trajectory: Vec<f64> = (0..60)
            .map(|i| 100.0 + 400.0 * (-0.2 * i as f64).exp())
            .collect();
        let analysis = analyze(&trajectory, reference, 0.2);
        assert!(analysis.settling_ticks.is_some());
        assert!(analysis.settling_ticks.unwrap() < 30);
        assert!((analysis.overshoot_ratio - 5.0).abs() < 0.1);
        assert!(analysis.steady_state_error < 0.2);
        assert_eq!(analysis.oscillations, 0);
        assert!(analysis.is_stable());
    }

    #[test]
    fn oscillating_loop_is_flagged_unstable() {
        // The healer keeps over-correcting: the metric bounces in and out of
        // the band repeatedly and never stays settled.
        let reference = 100.0;
        let trajectory: Vec<f64> = (0..80)
            .map(|i| if (i / 10) % 2 == 0 { 400.0 } else { 100.0 })
            .collect();
        let analysis = analyze(&trajectory, reference, 0.2);
        assert!(analysis.oscillations >= 3);
        assert!(!analysis.is_stable());
    }

    #[test]
    fn never_recovering_trajectory_has_no_settling_time() {
        let trajectory = vec![500.0; 40];
        let analysis = analyze(&trajectory, 100.0, 0.2);
        assert_eq!(analysis.settling_ticks, None);
        assert_eq!(analysis.steady_state_error, 0.0);
        assert!(!analysis.is_stable());
    }

    #[test]
    fn already_settled_trajectory_settles_immediately() {
        let trajectory = vec![100.0, 101.0, 99.0, 100.5];
        let analysis = analyze(&trajectory, 100.0, 0.1);
        assert_eq!(analysis.settling_ticks, Some(0));
        assert!(analysis.overshoot_ratio < 1.1);
        assert!(analysis.is_stable());
        assert_eq!(analyze(&[], 100.0, 0.1).settling_ticks, Some(0));
    }

    #[test]
    #[should_panic(expected = "tolerance must be in")]
    fn bad_tolerance_is_rejected() {
        analyze(&[1.0], 1.0, 1.5);
    }
}
