//! Hybrid policy: FixSym + diagnosis-based fallback (Section 5.1).
//!
//! "The signature-based approach is good at dealing with scenarios where
//! same workloads and failures tend to recur.  However, this approach can be
//! ineffective at finding fixes for previously-unseen or rarely-seen
//! failures.  This disadvantage could be overcome ... \[by\] combining the
//! signature-based approach with one or more of the diagnosis-based
//! approaches that find the cause of a new failure to recommend a fix."
//!
//! [`HybridHealer`] does exactly that: when FixSym's synopsis is confident
//! about a failure signature it uses the signature-based suggestion (cheap,
//! no diagnosis needed); when the synopsis is unsure — a novel failure — it
//! falls back to the diagnosis engines, ranks their recommendations by
//! confidence, applies the best one, and *teaches the synopsis* the outcome
//! so that the next occurrence of the same signature is handled by the
//! signature path.

use crate::policy::{target_for_fix, EpisodeTracker};
use crate::symptom::SymptomExtractor;
use crate::synopsis::{Learner, Synopsis, SynopsisKind};
use selfheal_diagnosis::{AnomalyDetector, BottleneckAnalyzer, DiagnosisContext, ManualRuleBase};
use selfheal_faults::{FixAction, FixKind};
use selfheal_sim::scenario::Healer;
use selfheal_sim::service::TickOutcome;
use selfheal_telemetry::{Schema, SeriesStore, SloTargets};

/// Combined signature + diagnosis healer.
///
/// Generic over the [`Learner`] backing the signature path (default: a
/// privately owned [`Synopsis`]; fleets pass a
/// [`crate::shared::SharedSynopsis`] handle).
#[derive(Debug)]
pub struct HybridHealer<L: Learner = Synopsis> {
    synopsis: L,
    extractor: SymptomExtractor,
    tracker: EpisodeTracker,
    series: SeriesStore,
    ctx: DiagnosisContext,
    anomaly: AnomalyDetector,
    bottleneck: BottleneckAnalyzer,
    manual: ManualRuleBase,
    schema: Schema,
    /// Synopsis confidence above which the signature path is trusted.
    pub signature_confidence_threshold: f64,
    current_symptoms: Option<Vec<f64>>,
    signature_decisions: u64,
    diagnosis_decisions: u64,
}

impl HybridHealer {
    /// Creates a hybrid healer for a service with the given schema and SLO
    /// targets.
    pub fn new(schema: &Schema, kind: SynopsisKind, targets: SloTargets) -> Self {
        Self::with_learner(schema, Synopsis::new(kind), targets)
    }

    /// The learned synopsis.
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }

    /// Mutable synopsis access (for preproduction bootstrapping).
    pub fn synopsis_mut(&mut self) -> &mut Synopsis {
        &mut self.synopsis
    }
}

impl<L: Learner> HybridHealer<L> {
    /// Creates a hybrid healer around an existing learner (e.g. a
    /// fleet-shared synopsis handle).
    pub fn with_learner(schema: &Schema, learner: L, targets: SloTargets) -> Self {
        HybridHealer {
            synopsis: learner,
            extractor: SymptomExtractor::new(schema, 30, 5),
            tracker: EpisodeTracker::new(4, 25),
            series: SeriesStore::new(schema.clone(), 4096),
            ctx: DiagnosisContext::from_schema(schema, targets),
            anomaly: AnomalyDetector::standard(),
            bottleneck: BottleneckAnalyzer::standard(),
            manual: ManualRuleBase::standard(),
            schema: schema.clone(),
            signature_confidence_threshold: 0.5,
            current_symptoms: None,
            signature_decisions: 0,
            diagnosis_decisions: 0,
        }
    }

    /// The learner backing the signature path.
    pub fn learner(&self) -> &L {
        &self.synopsis
    }

    /// How many fixes were chosen by the signature path vs the diagnosis
    /// fallback: `(signature, diagnosis)`.
    pub fn decision_counts(&self) -> (u64, u64) {
        (self.signature_decisions, self.diagnosis_decisions)
    }

    fn diagnose_fallback(&self, tried: &std::collections::HashSet<FixKind>) -> Option<FixAction> {
        let mut candidates = Vec::new();
        candidates.extend(self.anomaly.diagnose(&self.series, &self.ctx));
        candidates.extend(self.bottleneck.diagnose(&self.series, &self.ctx));
        let mut manual = self.manual.diagnose(&self.series, &self.ctx);
        // The manual catch-all restart is a last resort, not a fallback peer.
        manual.retain(|d| d.fix.kind != FixKind::FullServiceRestart);
        candidates.extend(manual);
        candidates.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("finite confidence")
        });
        candidates
            .into_iter()
            .find(|d| !tried.contains(&d.fix.kind))
            .map(|d| d.fix)
    }
}

impl<L: Learner> Healer for HybridHealer<L> {
    fn name(&self) -> &str {
        "hybrid_fixsym_diagnosis"
    }

    fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction> {
        let violated = !outcome.violations.is_empty();
        self.series.push(outcome.sample.clone());
        self.extractor
            .observe(&outcome.sample, !violated && !self.tracker.in_episode());

        if let Some((fix, success)) = self.tracker.resolve(outcome, violated) {
            if let Some(symptoms) = &self.current_symptoms {
                self.synopsis.record(symptoms, fix.kind, success);
            }
            if success {
                self.current_symptoms = None;
            }
        }

        if !self.tracker.should_act(violated) {
            return Vec::new();
        }
        let Some(symptoms) = self.extractor.symptoms() else {
            return Vec::new();
        };
        if self.current_symptoms.is_none() {
            self.current_symptoms = Some(symptoms.clone());
        }

        if self.tracker.exhausted() {
            let action = FixAction::untargeted(FixKind::FullServiceRestart);
            self.tracker.record_attempt(action);
            return vec![action];
        }

        let tried = self.tracker.tried_kinds();

        // Signature path: trust the synopsis when it is confident.
        if let Some((fix, confidence)) = self.synopsis.suggest_excluding(&symptoms, &tried) {
            if confidence >= self.signature_confidence_threshold {
                self.signature_decisions += 1;
                let action = target_for_fix(fix, &self.schema, &outcome.sample);
                self.tracker.record_attempt(action);
                return vec![action];
            }
        }

        // Diagnosis fallback for novel / low-confidence failures.
        if let Some(action) = self.diagnose_fallback(&tried) {
            self.diagnosis_decisions += 1;
            self.tracker.record_attempt(action);
            return vec![action];
        }

        // Neither path has anything new: escalate.
        let action = FixAction::untargeted(FixKind::FullServiceRestart);
        self.tracker.record_attempt(action);
        vec![action]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::{FaultId, FaultKind, FaultSpec, FaultTarget};
    use selfheal_sim::{MultiTierService, ServiceConfig};
    use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

    fn run(
        healer: &mut HybridHealer,
        service: &mut MultiTierService,
        workload: &mut TraceGenerator,
        ticks: u64,
        inject: Option<(u64, FaultSpec)>,
    ) {
        for _ in 0..ticks {
            let t = service.current_tick();
            if let Some((at, fault)) = &inject {
                if t == *at {
                    service.inject(fault.clone());
                }
            }
            let requests = workload.tick(t);
            let outcome = service.tick(&requests);
            for action in healer.observe(&outcome) {
                service.apply_fix(action);
            }
        }
    }

    #[test]
    fn novel_failure_uses_diagnosis_then_signature_handles_the_recurrence() {
        let config = ServiceConfig::tiny();
        let mut service = MultiTierService::new(config.clone());
        let mut workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
            9,
        );
        let mut healer = HybridHealer::new(
            service.schema(),
            SynopsisKind::NearestNeighbor,
            config.slo_targets(),
        );

        // First occurrence: the synopsis is empty, so the diagnosis fallback
        // must handle it.
        let fault = FaultSpec::new(
            FaultId(1),
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        );
        run(
            &mut healer,
            &mut service,
            &mut workload,
            250,
            Some((40, fault)),
        );
        assert!(
            service.active_faults().is_empty(),
            "first occurrence should be repaired"
        );
        let (sig_first, diag_first) = healer.decision_counts();
        assert!(
            diag_first >= 1,
            "the first occurrence must use the diagnosis path"
        );
        assert!(
            healer.synopsis().correct_fixes_learned() >= 1,
            "the outcome must be learned"
        );

        // Second occurrence of the same failure signature: the signature
        // path should now contribute.
        let fault2 = FaultSpec::new(
            FaultId(2),
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        );
        let tick = service.current_tick();
        run(
            &mut healer,
            &mut service,
            &mut workload,
            250,
            Some((tick + 30, fault2)),
        );
        assert!(
            service.active_faults().is_empty(),
            "second occurrence should be repaired"
        );
        let (sig_second, _) = healer.decision_counts();
        assert!(
            sig_second > sig_first,
            "the recurrence should be handled by the signature path ({sig_first} -> {sig_second})"
        );
    }

    #[test]
    fn healthy_run_takes_no_action() {
        let config = ServiceConfig::tiny();
        let mut service = MultiTierService::new(config.clone());
        let mut workload = TraceGenerator::new(
            WorkloadMix::browsing(),
            ArrivalProcess::Constant { rate: 20.0 },
            3,
        );
        let mut healer =
            HybridHealer::new(service.schema(), SynopsisKind::KMeans, config.slo_targets());
        run(&mut healer, &mut service, &mut workload, 100, None);
        assert_eq!(healer.decision_counts(), (0, 0));
        assert_eq!(healer.name(), "hybrid_fixsym_diagnosis");
    }
}
