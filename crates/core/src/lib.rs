//! # selfheal-core
//!
//! The self-healing layer of *Toward Self-Healing Multitier Services*
//! (Cook et al., ICDE 2007): signature-based fix identification (FixSym),
//! pluggable synopses, healing policies that drive the simulated service,
//! hybrid signature+diagnosis policies, proactive (forecast-driven) healing,
//! and control-theoretic measurements of the healing loop.
//!
//! The crate's centrepiece is [`fixsym::FixSymEngine`], a faithful
//! implementation of the paper's Figure 3 pseudocode:
//!
//! ```text
//! while (true)
//!   wait for next failure data point f
//!   while (!fixed and count < THRESHOLD)
//!     probFix = suggest_fix(S, f, F)     // query the synopsis
//!     apply_fix(probFix)
//!     fixed = check_fix(probFix)
//!     update_synopsis(S, f, probFix, fixed)
//!   if (!fixed) restart the service and notify the administrator
//! ```
//!
//! The synopsis `S` is abstracted by [`synopsis::Synopsis`], which wraps the
//! three learners the paper compares (nearest neighbor, k-means, AdaBoost
//! with 60 weak learners) behind one interface and tracks the training cost
//! needed for the Table 3 comparison.
//!
//! The crate also provides [`policy`] (healers wrapping the manual rule base
//! and the three diagnosis-based engines so all approaches of Table 2 can be
//! run head-to-head), [`hybrid`] (signature + diagnosis combination,
//! Section 5.1), [`proactive`] (failure forecasting, Section 5.3),
//! [`control`] (settling time / overshoot / oscillation of the healing loop,
//! Section 5.4), [`store`] (pluggable [`store::SynopsisStore`] homes for the
//! learned model: private, lock-shared, or sharded by symptom-space region),
//! [`snapshot`] (JSON-lines synopsis persistence for warm-starting fleets),
//! and [`harness`] (a convenience wrapper that bundles a simulated service
//! with a healing policy for the examples and benches).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod control;
pub mod fixsym;
pub mod harness;
pub mod hybrid;
pub mod policy;
pub mod proactive;
pub mod shared;
pub mod snapshot;
pub mod store;
pub mod symptom;
pub mod synopsis;

pub use fixsym::{EpisodeResult, FixSymConfig, FixSymEngine, FixSymHealer};
pub use harness::{
    EventChoice, LearnerChoice, PolicyChoice, ReactiveChoice, SelfHealingService, WorkloadChoice,
};
pub use hybrid::HybridHealer;
pub use policy::{DiagnosisEngine, DiagnosisHealer, EpisodeTracker};
pub use proactive::ProactiveHealer;
pub use shared::SharedSynopsis;
pub use snapshot::{SynopsisExample, SynopsisSnapshot};
pub use store::{FixStats, LockedStore, PrivateStore, ShardedStore, SynopsisStore};
pub use symptom::SymptomExtractor;
pub use synopsis::{Learner, Synopsis, SynopsisKind};
