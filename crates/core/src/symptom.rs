//! Symptom extraction: turning raw metric samples into the failure data
//! points the synopses classify.
//!
//! FixSym (Section 4.3.4) "identifies a subset Ω of attributes in X1,...,Xn
//! that classify the symptoms of working and failed states of the service in
//! the best manner; the values of attributes in Ω denote the signature of
//! these states."  In this implementation the signature is the *scale-free*
//! deviation of every metric from its healthy baseline: the ratio of the
//! metric's mean over a short recent window to its mean over the baseline
//! established while the service was healthy.  This matches the
//! representation used by the simulator's failure-state generator, so
//! synopses trained offline (preproduction active stimulation) transfer
//! directly to online healing.

use selfheal_telemetry::{Sample, Schema, Value};
use std::collections::VecDeque;

/// Ratio features are clipped to this range (matching the generator).
const RATIO_CLIP: f64 = 25.0;

/// Maintains a healthy baseline and produces symptom vectors.
#[derive(Debug, Clone)]
pub struct SymptomExtractor {
    width: usize,
    baseline_target: usize,
    window: usize,
    baseline_sums: Vec<f64>,
    baseline_count: u64,
    frozen: bool,
    recent: VecDeque<Vec<Value>>,
}

impl SymptomExtractor {
    /// Creates an extractor for samples of `schema`, establishing the
    /// baseline from the first `baseline_ticks` *healthy* samples and
    /// summarizing symptoms over a `window`-sample recent window.
    pub fn new(schema: &Schema, baseline_ticks: usize, window: usize) -> Self {
        SymptomExtractor {
            width: schema.len(),
            baseline_target: baseline_ticks.max(5),
            window: window.max(1),
            baseline_sums: vec![0.0; schema.len()],
            baseline_count: 0,
            frozen: false,
            recent: VecDeque::new(),
        }
    }

    /// Number of metrics per symptom vector.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns `true` once the baseline has been established.
    pub fn baseline_ready(&self) -> bool {
        self.frozen || self.baseline_count >= self.baseline_target as u64
    }

    /// Observes one sample.  `healthy` should be `false` while the service
    /// is in (or suspected to be in) violation so the baseline is not
    /// contaminated — the paper's warning that "the baseline behavior may
    /// need to be captured when the service is not experiencing significant
    /// failures".
    pub fn observe(&mut self, sample: &Sample, healthy: bool) {
        debug_assert_eq!(sample.width(), self.width);
        if !self.frozen && healthy {
            for (acc, v) in self.baseline_sums.iter_mut().zip(sample.values()) {
                *acc += v;
            }
            self.baseline_count += 1;
            if self.baseline_count >= self.baseline_target as u64 {
                self.frozen = true;
            }
        }
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(sample.values().to_vec());
    }

    /// The healthy baseline mean of every metric (zeros until at least one
    /// healthy sample has been observed).
    pub fn baseline_means(&self) -> Vec<Value> {
        if self.baseline_count == 0 {
            return vec![0.0; self.width];
        }
        self.baseline_sums
            .iter()
            .map(|s| s / self.baseline_count as f64)
            .collect()
    }

    /// The current symptom vector: per-metric ratio of the recent-window
    /// mean to the baseline mean, clipped to `[0, 25]`.  Returns `None`
    /// until both a baseline and at least one recent sample exist.
    pub fn symptoms(&self) -> Option<Vec<Value>> {
        if self.baseline_count == 0 || self.recent.is_empty() {
            return None;
        }
        let baseline = self.baseline_means();
        let n = self.recent.len() as f64;
        let mut means = vec![0.0; self.width];
        for row in &self.recent {
            for (acc, v) in means.iter_mut().zip(row) {
                *acc += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        Some(
            means
                .iter()
                .zip(&baseline)
                .map(|(current, base)| ((current + 1e-3) / (base + 1e-3)).clamp(0.0, RATIO_CLIP))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_telemetry::{MetricKind, SchemaBuilder, Tier};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .metric("a", Tier::Service, MetricKind::LatencyMs)
            .metric("b", Tier::Database, MetricKind::Ratio)
            .build()
    }

    fn sample(schema: &Schema, tick: u64, a: f64, b: f64) -> Sample {
        let mut s = Sample::zeroed(schema, tick);
        s.set(schema.expect_id("a"), a);
        s.set(schema.expect_id("b"), b);
        s
    }

    #[test]
    fn baseline_freezes_after_enough_healthy_samples() {
        let sc = schema();
        let mut e = SymptomExtractor::new(&sc, 5, 3);
        assert!(!e.baseline_ready());
        for t in 0..5 {
            e.observe(&sample(&sc, t, 100.0, 0.02), true);
        }
        assert!(e.baseline_ready());
        // Later "healthy" samples no longer shift the baseline.
        for t in 5..20 {
            e.observe(&sample(&sc, t, 1_000.0, 0.9), true);
        }
        let baseline = e.baseline_means();
        assert!((baseline[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn symptoms_are_ratios_against_the_baseline() {
        let sc = schema();
        let mut e = SymptomExtractor::new(&sc, 5, 2);
        for t in 0..5 {
            e.observe(&sample(&sc, t, 100.0, 0.5), true);
        }
        for t in 5..7 {
            e.observe(&sample(&sc, t, 300.0, 0.5), false);
        }
        let symptoms = e.symptoms().unwrap();
        assert!(
            (symptoms[0] - 3.0).abs() < 0.01,
            "metric a tripled: {}",
            symptoms[0]
        );
        assert!(
            (symptoms[1] - 1.0).abs() < 0.01,
            "metric b unchanged: {}",
            symptoms[1]
        );
    }

    #[test]
    fn unhealthy_samples_do_not_contaminate_the_baseline() {
        let sc = schema();
        let mut e = SymptomExtractor::new(&sc, 5, 2);
        e.observe(&sample(&sc, 0, 100.0, 0.5), true);
        for t in 1..10 {
            e.observe(&sample(&sc, t, 10_000.0, 0.9), false);
        }
        let baseline = e.baseline_means();
        assert!((baseline[0] - 100.0).abs() < 1e-9);
        assert!(!e.baseline_ready(), "only one healthy sample so far");
    }

    #[test]
    fn symptoms_are_clipped_and_none_before_any_data() {
        let sc = schema();
        let mut e = SymptomExtractor::new(&sc, 5, 2);
        assert!(e.symptoms().is_none());
        e.observe(&sample(&sc, 0, 1.0, 0.001), true);
        e.observe(&sample(&sc, 1, 1_000_000.0, 0.001), false);
        let symptoms = e.symptoms().unwrap();
        assert!(symptoms[0] <= 25.0);
        assert_eq!(e.width(), 2);
    }
}
