//! The synopsis `S` of the FixSym loop: a swappable learned model mapping
//! failure signatures to fixes.
//!
//! Section 5.2 of the paper compares three synopsis implementations —
//! nearest neighbor, k-means, and AdaBoost with 60 weak learners — on
//! accuracy (Figure 4) and time-to-generate (Table 3).  [`Synopsis`] wraps
//! all three behind one interface, records every training example (both
//! successful and failed fixes — "FixSym requires synopses to learn from
//! unsuccessful fixes ... in addition to successful fixes"), and tracks both
//! wall-clock and a deterministic model-operation count for the cost
//! comparison.

use selfheal_faults::FixKind;
use selfheal_learn::{AdaBoost, Classifier, Dataset, Example, KMeans, NearestNeighbor};
use std::collections::HashSet;
// lint:allow(nondeterminism): wall-time import feeds the training_wall_time
// metric only, never a learned or fingerprinted value.
use std::time::{Duration, Instant};

/// A learned failure-signature → fix mapping, abstracted so healing policies
/// work identically against a privately owned [`Synopsis`] or a handle to
/// fleet-shared state (e.g. [`crate::shared::SharedSynopsis`]).
///
/// This is the seam the fleet engine plugs into: [`crate::FixSymHealer`] and
/// [`crate::HybridHealer`] are generic over `Learner`, so one replica's
/// healer can consult — and teach — a synopsis that every other replica in
/// the fleet shares.
pub trait Learner: Send {
    /// Suggests the most probable fix for a failure signature with a
    /// confidence estimate; `None` while nothing has been learned.
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)>;

    /// Suggests the best fix not in `excluded` (fixes already tried for the
    /// current failure).
    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)>;

    /// Records the outcome of an attempted fix (Figure 3, line 15).
    ///
    /// Implementations may defer the model refit (shared synopses batch
    /// updates so replicas never stall on a retrain); the example must still
    /// become visible to `suggest` eventually.
    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool);

    /// Number of successful-fix examples learned so far.
    fn correct_fixes_learned(&self) -> usize;
}

impl Learner for Synopsis {
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        Synopsis::suggest(self, symptoms)
    }

    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        Synopsis::suggest_excluding(self, symptoms, excluded)
    }

    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        self.update(symptoms, fix, success);
    }

    fn correct_fixes_learned(&self) -> usize {
        Synopsis::correct_fixes_learned(self)
    }
}

/// Which learner backs the synopsis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynopsisKind {
    /// 1-nearest-neighbor over all successfully fixed failures.
    NearestNeighbor,
    /// One cluster per fix, nearest-centroid classification.
    KMeans,
    /// SAMME AdaBoost over decision stumps with the given number of weak
    /// learners (the paper uses 60).
    AdaBoost(usize),
}

impl SynopsisKind {
    /// The three configurations compared in Figure 4 / Table 3.
    pub fn paper_set() -> Vec<SynopsisKind> {
        vec![
            SynopsisKind::AdaBoost(60),
            SynopsisKind::NearestNeighbor,
            SynopsisKind::KMeans,
        ]
    }

    /// Display label used in benchmark output.
    pub fn label(self) -> String {
        match self {
            SynopsisKind::NearestNeighbor => "nearest_neighbor".to_string(),
            SynopsisKind::KMeans => "k_means".to_string(),
            SynopsisKind::AdaBoost(n) => format!("adaboost_{n}"),
        }
    }

    /// Inverse of [`SynopsisKind::label`] — used by the synopsis codec when
    /// loading a saved model.
    pub fn from_label(label: &str) -> Option<SynopsisKind> {
        match label {
            "nearest_neighbor" => Some(SynopsisKind::NearestNeighbor),
            "k_means" => Some(SynopsisKind::KMeans),
            other => other
                .strip_prefix("adaboost_")
                .and_then(|n| n.parse::<usize>().ok())
                .map(SynopsisKind::AdaBoost),
        }
    }
}

enum Model {
    NearestNeighbor(NearestNeighbor),
    KMeans(KMeans),
    AdaBoost(AdaBoost),
}

impl Model {
    fn as_classifier(&self) -> &dyn Classifier {
        match self {
            Model::NearestNeighbor(m) => m,
            Model::KMeans(m) => m,
            Model::AdaBoost(m) => m,
        }
    }

    fn as_classifier_mut(&mut self) -> &mut dyn Classifier {
        match self {
            Model::NearestNeighbor(m) => m,
            Model::KMeans(m) => m,
            Model::AdaBoost(m) => m,
        }
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Model::NearestNeighbor(_) => write!(f, "Model::NearestNeighbor"),
            Model::KMeans(_) => write!(f, "Model::KMeans"),
            Model::AdaBoost(_) => write!(f, "Model::AdaBoost"),
        }
    }
}

/// A learned mapping from failure signatures to fixes.
#[derive(Debug)]
pub struct Synopsis {
    kind: SynopsisKind,
    model: Model,
    /// Successful (symptom, fix) examples — the positive training set.
    positives: Dataset,
    /// Failed fix attempts as (symptom, fix) pairs — kept for the negative
    /// knowledge queries and the noisy-label ablation.
    negatives: Vec<Example>,
    training_wall_time: Duration,
    training_ops: u64,
    retrains: u64,
}

impl Synopsis {
    /// Creates an empty synopsis of the given kind.
    pub fn new(kind: SynopsisKind) -> Self {
        let model = match kind {
            SynopsisKind::NearestNeighbor => Model::NearestNeighbor(NearestNeighbor::new()),
            SynopsisKind::KMeans => Model::KMeans(KMeans::new()),
            SynopsisKind::AdaBoost(rounds) => Model::AdaBoost(AdaBoost::new(rounds.max(1))),
        };
        Synopsis {
            kind,
            model,
            positives: Dataset::new(0),
            negatives: Vec::new(),
            training_wall_time: Duration::ZERO,
            training_ops: 0,
            retrains: 0,
        }
    }

    /// The configured kind.
    pub fn kind(&self) -> SynopsisKind {
        self.kind
    }

    /// Number of successful-fix training examples seen so far (the x-axis of
    /// Figure 4).
    pub fn correct_fixes_learned(&self) -> usize {
        self.positives.len()
    }

    /// Number of failed-fix examples recorded.
    pub fn failed_fixes_recorded(&self) -> usize {
        self.negatives.len()
    }

    /// The successful (symptom, fix) training examples, in insertion order —
    /// what the synopsis codec persists so another store can rebuild the
    /// model.
    pub fn positive_examples(&self) -> &[Example] {
        self.positives.examples()
    }

    /// The failed-fix examples, in insertion order.
    pub fn negative_examples(&self) -> &[Example] {
        &self.negatives
    }

    /// Cumulative wall-clock time spent fitting the model.
    pub fn training_wall_time(&self) -> Duration {
        self.training_wall_time
    }

    /// Cumulative deterministic model-fitting operations (hardware
    /// independent cost proxy for Table 3).
    pub fn training_ops(&self) -> u64 {
        self.training_ops
    }

    /// How many times the underlying model has been refitted.
    pub fn retrains(&self) -> u64 {
        self.retrains
    }

    /// Records the outcome of an attempted fix and updates the synopsis
    /// (Figure 3, line 15).  Successful fixes become training examples and
    /// trigger a refit; failed fixes are recorded as negative knowledge.
    pub fn update(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        if success {
            self.positives
                .push(Example::new(symptoms.to_vec(), fix.code()));
            self.refit();
        } else {
            self.negatives
                .push(Example::new(symptoms.to_vec(), fix.code()));
        }
    }

    /// Applies a batch of `(symptoms, fix, success)` outcomes with a single
    /// refit at the end (if any outcome was a success).
    ///
    /// This is the drain path of the fleet's shared synopsis: replicas queue
    /// updates cheaply and whichever replica trips the batch threshold pays
    /// for one combined retrain instead of one per example.
    pub fn absorb(&mut self, outcomes: impl IntoIterator<Item = (Vec<f64>, FixKind, bool)>) {
        let mut new_positives = false;
        for (symptoms, fix, success) in outcomes {
            let example = Example::new(symptoms, fix.code());
            if success {
                self.positives.push(example);
                new_positives = true;
            } else {
                self.negatives.push(example);
            }
        }
        if new_positives {
            self.refit();
        }
    }

    /// Bulk-loads successful-fix examples (preproduction bootstrap /
    /// Figure 4 training prefix) and refits once.
    pub fn bootstrap(&mut self, examples: &[Example]) {
        for e in examples {
            self.positives.push(e.clone());
        }
        if !examples.is_empty() {
            self.refit();
        }
    }

    fn refit(&mut self) {
        // lint:allow(nondeterminism): measures training wall time for the
        // report; the fitted model sees none of it.
        let start = Instant::now();
        self.model.as_classifier_mut().fit(&self.positives);
        self.training_wall_time += start.elapsed();
        self.training_ops += self.model.as_classifier().last_fit_cost();
        self.retrains += 1;
    }

    /// Suggests the most probable fix for a failure signature, together with
    /// a confidence estimate.  Returns `None` before any successful fix has
    /// been learned.
    ///
    /// For the instance-based nearest-neighbor synopsis the raw majority
    /// vote is always unanimous (k = 1), so the confidence is additionally
    /// discounted by how *far* the nearest stored failure signature is: a
    /// signature unlike anything seen before yields low confidence, which is
    /// what lets hybrid policies detect novel failures and fall back to a
    /// diagnosis-based approach (Section 5.1 of the paper).
    pub fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        if self.positives.is_empty() {
            return None;
        }
        let (code, mut confidence) = self.model.as_classifier().predict_with_confidence(symptoms);
        if let Model::NearestNeighbor(nn) = &self.model {
            if let Some((distance, _)) = nn.neighbors(symptoms).first() {
                confidence *= (-distance / 4.0).exp();
            }
        }
        FixKind::from_code(code).map(|fix| (fix, confidence))
    }

    /// Suggests the best fix that is *not* in `excluded` — used by the
    /// FixSym loop to avoid retrying a fix that already failed for the
    /// current failure (line 9 of Figure 3 on subsequent iterations).
    ///
    /// For the instance-based models this re-ranks by voting among the fixes
    /// of the stored examples closest in symptom space; for the ensemble it
    /// uses the per-class vote scores.
    pub fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        if self.positives.is_empty() {
            return None;
        }
        // Fast path: the primary suggestion is allowed.
        if let Some((fix, confidence)) = self.suggest(symptoms) {
            if !excluded.contains(&fix) {
                return Some((fix, confidence));
            }
        }
        match &self.model {
            Model::AdaBoost(model) => {
                let mut scores: Vec<(usize, f64)> =
                    model.class_scores(symptoms).into_iter().collect();
                // Tie-break equal scores toward the lower label code so the
                // re-ranked suggestion never depends on map iteration order.
                scores.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("finite score")
                        .then(a.0.cmp(&b.0))
                });
                for (code, score) in scores {
                    if let Some(fix) = FixKind::from_code(code) {
                        if !excluded.contains(&fix) {
                            return Some((fix, score));
                        }
                    }
                }
                None
            }
            _ => {
                // Rank the labels of the k closest stored examples.
                let mut nn = NearestNeighbor::with_k(self.positives.len().min(25));
                nn.fit(&self.positives);
                let neighbors = nn.neighbors(symptoms);
                let total = neighbors.len() as f64;
                let mut votes: Vec<(usize, f64)> = Vec::new();
                for (_, label) in neighbors {
                    match votes.iter_mut().find(|(l, _)| *l == label) {
                        Some((_, v)) => *v += 1.0,
                        None => votes.push((label, 1.0)),
                    }
                }
                votes.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite vote"));
                for (code, count) in votes {
                    if let Some(fix) = FixKind::from_code(code) {
                        if !excluded.contains(&fix) {
                            return Some((fix, count / total));
                        }
                    }
                }
                None
            }
        }
    }

    /// Accuracy of the current synopsis on a labelled test set (the y-axis
    /// of Figure 4).
    pub fn accuracy_on(&self, test: &Dataset) -> f64 {
        if self.positives.is_empty() || test.is_empty() {
            return 0.0;
        }
        selfheal_learn::accuracy(self.model.as_classifier(), test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symptom(kind: usize) -> Vec<f64> {
        // Three well-separated symptom archetypes.
        match kind {
            0 => vec![8.0, 1.0, 1.0],
            1 => vec![1.0, 9.0, 1.0],
            _ => vec![1.0, 1.0, 7.0],
        }
    }

    fn train(synopsis: &mut Synopsis, n: usize) {
        let fixes = [
            FixKind::RepartitionMemory,
            FixKind::MicrorebootEjb,
            FixKind::UpdateStatistics,
        ];
        for i in 0..n {
            let class = i % 3;
            let mut s = symptom(class);
            s[0] += (i as f64 * 0.01) % 0.3;
            synopsis.update(&s, fixes[class], true);
        }
    }

    #[test]
    fn all_three_kinds_learn_the_symptom_to_fix_mapping() {
        for kind in SynopsisKind::paper_set() {
            let mut synopsis = Synopsis::new(kind);
            assert!(synopsis.suggest(&symptom(0)).is_none());
            train(&mut synopsis, 30);
            assert_eq!(synopsis.correct_fixes_learned(), 30);
            let (fix, confidence) = synopsis.suggest(&symptom(0)).unwrap();
            assert_eq!(fix, FixKind::RepartitionMemory, "{}", kind.label());
            assert!(confidence > 0.0);
            assert_eq!(
                synopsis.suggest(&symptom(1)).unwrap().0,
                FixKind::MicrorebootEjb
            );
            assert_eq!(
                synopsis.suggest(&symptom(2)).unwrap().0,
                FixKind::UpdateStatistics
            );
        }
    }

    #[test]
    fn failed_fixes_are_recorded_but_do_not_become_positive_examples() {
        let mut synopsis = Synopsis::new(SynopsisKind::NearestNeighbor);
        synopsis.update(&symptom(0), FixKind::KillHungQuery, false);
        assert_eq!(synopsis.correct_fixes_learned(), 0);
        assert_eq!(synopsis.failed_fixes_recorded(), 1);
        assert!(synopsis.suggest(&symptom(0)).is_none());
    }

    #[test]
    fn suggest_excluding_falls_back_to_the_next_best_fix() {
        for kind in SynopsisKind::paper_set() {
            let mut synopsis = Synopsis::new(kind);
            train(&mut synopsis, 30);
            let mut excluded = HashSet::new();
            excluded.insert(FixKind::RepartitionMemory);
            let (fix, _) = synopsis.suggest_excluding(&symptom(0), &excluded).unwrap();
            assert_ne!(fix, FixKind::RepartitionMemory, "{}", kind.label());
        }
    }

    #[test]
    fn adaboost_training_cost_dwarfs_nearest_neighbor() {
        let mut nn = Synopsis::new(SynopsisKind::NearestNeighbor);
        let mut ada = Synopsis::new(SynopsisKind::AdaBoost(20));
        train(&mut nn, 30);
        train(&mut ada, 30);
        assert!(
            ada.training_ops() > 50 * nn.training_ops(),
            "ada {} vs nn {}",
            ada.training_ops(),
            nn.training_ops()
        );
        assert_eq!(nn.retrains(), 30);
    }

    #[test]
    fn accuracy_on_a_test_set_reaches_one_for_separable_symptoms() {
        let mut synopsis = Synopsis::new(SynopsisKind::KMeans);
        train(&mut synopsis, 30);
        let mut test = Dataset::new(3);
        test.push(Example::new(symptom(0), FixKind::RepartitionMemory.code()));
        test.push(Example::new(symptom(1), FixKind::MicrorebootEjb.code()));
        test.push(Example::new(symptom(2), FixKind::UpdateStatistics.code()));
        assert_eq!(synopsis.accuracy_on(&test), 1.0);
        assert_eq!(Synopsis::new(SynopsisKind::KMeans).accuracy_on(&test), 0.0);
    }

    #[test]
    fn bootstrap_loads_examples_in_one_refit() {
        let mut synopsis = Synopsis::new(SynopsisKind::NearestNeighbor);
        let examples: Vec<Example> = (0..10)
            .map(|i| Example::new(symptom(i % 3), [5, 0, 4][i % 3]))
            .collect();
        synopsis.bootstrap(&examples);
        assert_eq!(synopsis.correct_fixes_learned(), 10);
        assert_eq!(synopsis.retrains(), 1);
    }

    #[test]
    fn labels_round_trip_through_fixkind_codes() {
        let mut synopsis = Synopsis::new(SynopsisKind::NearestNeighbor);
        synopsis.update(&[1.0, 2.0], FixKind::ProvisionResources, true);
        let (fix, _) = synopsis.suggest(&[1.0, 2.0]).unwrap();
        assert_eq!(fix, FixKind::ProvisionResources);
    }
}
