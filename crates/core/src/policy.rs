//! Healing policies: episode tracking, fix targeting, and healers that wrap
//! the manual rule base and the three diagnosis-based engines so every
//! approach in Table 2 of the paper can drive the simulated service through
//! the same [`Healer`] interface.

use selfheal_diagnosis::{
    AnomalyDetector, BottleneckAnalyzer, CorrelationAnalyzer, DiagnosisContext, ManualRuleBase,
};
use selfheal_faults::{FaultTarget, FixAction, FixKind};
use selfheal_sim::scenario::Healer;
use selfheal_sim::service::TickOutcome;
use selfheal_telemetry::{Sample, Schema, SeriesStore, SloTargets};
use std::collections::HashSet;

/// Tracks the state of the current failure episode for an online healer:
/// which fixes have been tried, whether a fix is in flight, and whether the
/// post-fix verification window has elapsed.
#[derive(Debug, Clone)]
pub struct EpisodeTracker {
    threshold: u32,
    verify_ticks: u32,
    attempts: Vec<FixAction>,
    pending: Option<FixAction>,
    verify_remaining: Option<u32>,
    in_episode: bool,
    episodes_completed: u64,
    escalations: u64,
}

impl EpisodeTracker {
    /// Creates a tracker with the given attempt threshold and verification
    /// delay (ticks to wait after a fix completes before judging it).
    pub fn new(threshold: u32, verify_ticks: u32) -> Self {
        EpisodeTracker {
            threshold: threshold.max(1),
            verify_ticks,
            attempts: Vec::new(),
            pending: None,
            verify_remaining: None,
            in_episode: false,
            episodes_completed: 0,
            escalations: 0,
        }
    }

    /// Returns `true` while a failure episode is being handled.
    pub fn in_episode(&self) -> bool {
        self.in_episode
    }

    /// Number of episodes that have been closed (recovered).
    pub fn episodes_completed(&self) -> u64 {
        self.episodes_completed
    }

    /// Number of escalations recorded.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Fix attempts made in the current episode.
    pub fn attempts(&self) -> &[FixAction] {
        &self.attempts
    }

    /// The kinds of fixes already tried in the current episode.
    pub fn tried_kinds(&self) -> HashSet<FixKind> {
        self.attempts.iter().map(|a| a.kind).collect()
    }

    /// Returns `true` when the attempt threshold has been reached and the
    /// next action should be the escalation.
    pub fn exhausted(&self) -> bool {
        self.attempts.len() as u32 >= self.threshold
            && !self.attempts.iter().any(|a| a.kind.is_escalation())
    }

    /// Records that a fix was initiated.
    pub fn record_attempt(&mut self, action: FixAction) {
        if action.kind.is_escalation() {
            self.escalations += 1;
        }
        self.attempts.push(action);
        self.pending = Some(action);
        self.verify_remaining = None;
        self.in_episode = true;
    }

    /// Advances the tracker with this tick's outcome.  Returns
    /// `Some((action, success))` when a previously initiated fix has
    /// completed and its verification window has elapsed; `success` is
    /// judged from whether the service is still in violation.
    pub fn resolve(&mut self, outcome: &TickOutcome, violated: bool) -> Option<(FixAction, bool)> {
        // Has the in-flight fix finished being applied?
        if let Some(pending) = self.pending {
            if outcome
                .completed_fixes
                .iter()
                .any(|f| f.action.kind == pending.kind && f.action.target == pending.target)
            {
                self.verify_remaining = Some(self.verify_ticks);
                self.pending = None;
            }
        }
        // Count down the verification window.
        if let Some(remaining) = self.verify_remaining {
            if remaining == 0 {
                self.verify_remaining = None;
                let action = *self
                    .attempts
                    .last()
                    .expect("verification implies an attempt");
                let success = !violated;
                if success {
                    self.close_episode();
                }
                return Some((action, success));
            }
            self.verify_remaining = Some(remaining - 1);
            return None;
        }
        // No fix in flight: a quiet service closes any lingering episode.
        if self.in_episode && self.pending.is_none() && !violated {
            self.close_episode();
        }
        None
    }

    /// Returns `true` when the healer should pick a (new) fix this tick:
    /// the service is in confirmed violation and no fix is being applied or
    /// verified.
    pub fn should_act(&mut self, violated: bool) -> bool {
        if violated {
            self.in_episode = true;
        }
        violated && self.pending.is_none() && self.verify_remaining.is_none()
    }

    fn close_episode(&mut self) {
        if self.in_episode {
            self.episodes_completed += 1;
        }
        self.in_episode = false;
        self.attempts.clear();
        self.pending = None;
        self.verify_remaining = None;
    }
}

/// Chooses a concrete target for a targeted fix kind from the current
/// sample, using the simulator's metric naming convention: the EJB with the
/// most errors (falling back to the most calls), the busiest table, or the
/// most utilized tier.
pub fn target_for_fix(kind: FixKind, schema: &Schema, sample: &Sample) -> FixAction {
    if !kind.needs_target() {
        return FixAction::untargeted(kind);
    }
    let max_indexed = |prefix: &str, suffix: &str| -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0.. {
            match schema.id(&format!("{prefix}{i}{suffix}")) {
                Some(id) => {
                    let v = sample.get(id);
                    if best.map(|(_, bv)| v > bv).unwrap_or(true) {
                        best = Some((i, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(i, _)| i)
    };

    match kind {
        FixKind::MicrorebootEjb | FixKind::KillHungQuery => {
            let by_errors = max_indexed("app.ejb", "_errors").filter(|i| {
                schema
                    .id(&format!("app.ejb{i}_errors"))
                    .map(|id| sample.get(id) > 0.0)
                    .unwrap_or(false)
            });
            let index = by_errors
                .or_else(|| max_indexed("app.ejb", "_calls"))
                .unwrap_or(0);
            FixAction::targeted(kind, FaultTarget::Ejb { index })
        }
        FixKind::UpdateStatistics | FixKind::RepartitionTable | FixKind::RebuildIndex => {
            let index = max_indexed("db.table", "_accesses").unwrap_or(0);
            FixAction::targeted(kind, FaultTarget::Table { index })
        }
        FixKind::RebootTier | FixKind::ProvisionResources => {
            let tiers = [
                ("web.util", FaultTarget::WebTier),
                ("app.util", FaultTarget::AppTier),
                ("db.util", FaultTarget::DatabaseTier),
            ];
            let target = tiers
                .iter()
                .filter_map(|(name, t)| schema.id(name).map(|id| (sample.get(id), *t)))
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite utilization"))
                .map(|(_, t)| t)
                .unwrap_or(FaultTarget::AppTier);
            FixAction::targeted(kind, target)
        }
        _ => FixAction::untargeted(kind),
    }
}

/// The diagnosis engine wrapped by a [`DiagnosisHealer`].
#[derive(Debug)]
pub enum DiagnosisEngine {
    /// Manual rule-based baseline (Section 3).
    Manual(ManualRuleBase),
    /// Anomaly detection (Section 4.3.1).
    Anomaly(AnomalyDetector),
    /// Correlation analysis (Section 4.3.2).
    Correlation(CorrelationAnalyzer),
    /// Bottleneck analysis (Section 4.3.3).
    Bottleneck(BottleneckAnalyzer),
}

impl DiagnosisEngine {
    fn label(&self) -> &'static str {
        match self {
            DiagnosisEngine::Manual(_) => "manual_rules",
            DiagnosisEngine::Anomaly(_) => "anomaly_detection",
            DiagnosisEngine::Correlation(_) => "correlation_analysis",
            DiagnosisEngine::Bottleneck(_) => "bottleneck_analysis",
        }
    }
}

/// A healer that drives the service with one diagnosis-based engine (or the
/// manual rule base).
#[derive(Debug)]
pub struct DiagnosisHealer {
    engine: DiagnosisEngine,
    series: SeriesStore,
    ctx: DiagnosisContext,
    tracker: EpisodeTracker,
    name: &'static str,
    /// Ticks spent in violation with nothing (new) to suggest; once it
    /// exceeds `max_wait_ticks` the healer escalates rather than waiting
    /// forever for more data.
    idle_violation_ticks: u32,
    max_wait_ticks: u32,
}

impl DiagnosisHealer {
    /// Creates a healer around the given engine for a service with `schema`
    /// and the given SLO targets (used as the failure indicator by the
    /// correlation analyzer).
    pub fn new(engine: DiagnosisEngine, schema: &Schema, targets: SloTargets) -> Self {
        let ctx = DiagnosisContext::from_schema(schema, targets);
        let name = engine.label();
        DiagnosisHealer {
            engine,
            series: SeriesStore::new(schema.clone(), 4096),
            ctx,
            tracker: EpisodeTracker::new(3, 25),
            name,
            idle_violation_ticks: 0,
            max_wait_ticks: 90,
        }
    }

    /// Convenience constructors for the four engines.
    pub fn manual(schema: &Schema, targets: SloTargets) -> Self {
        Self::new(
            DiagnosisEngine::Manual(ManualRuleBase::standard()),
            schema,
            targets,
        )
    }

    /// Anomaly-detection healer with the standard window sizes.
    pub fn anomaly(schema: &Schema, targets: SloTargets) -> Self {
        Self::new(
            DiagnosisEngine::Anomaly(AnomalyDetector::standard()),
            schema,
            targets,
        )
    }

    /// Correlation-analysis healer with the standard window.
    pub fn correlation(schema: &Schema, targets: SloTargets) -> Self {
        let ctx = DiagnosisContext::from_schema(schema, targets);
        Self::new(
            DiagnosisEngine::Correlation(CorrelationAnalyzer::standard(&ctx)),
            schema,
            targets,
        )
    }

    /// Bottleneck-analysis healer with the standard thresholds.
    pub fn bottleneck(schema: &Schema, targets: SloTargets) -> Self {
        Self::new(
            DiagnosisEngine::Bottleneck(BottleneckAnalyzer::standard()),
            schema,
            targets,
        )
    }

    /// The episode tracker (for benchmark reporting).
    pub fn tracker(&self) -> &EpisodeTracker {
        &self.tracker
    }
}

impl Healer for DiagnosisHealer {
    fn name(&self) -> &str {
        self.name
    }

    fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction> {
        let violated = !outcome.violations.is_empty();
        self.series.push(outcome.sample.clone());
        if let DiagnosisEngine::Correlation(analyzer) = &mut self.engine {
            analyzer.observe(&outcome.sample, violated);
        }

        let _ = self.tracker.resolve(outcome, violated);
        if !self.tracker.should_act(violated) {
            return Vec::new();
        }
        if self.tracker.exhausted() {
            let action = FixAction::untargeted(FixKind::FullServiceRestart);
            self.tracker.record_attempt(action);
            return vec![action];
        }

        let diagnoses = match &self.engine {
            DiagnosisEngine::Manual(e) => e.diagnose(&self.series, &self.ctx),
            DiagnosisEngine::Anomaly(e) => e.diagnose(&self.series, &self.ctx),
            DiagnosisEngine::Correlation(e) => e.diagnose(&self.series, &self.ctx),
            DiagnosisEngine::Bottleneck(e) => e.diagnose(&self.series, &self.ctx),
        };
        let tried = self.tracker.tried_kinds();
        // Provisioning is additive (each application adds capacity), so it
        // may be repeated; every other fix kind is only tried once per
        // episode.
        let next = diagnoses
            .into_iter()
            .find(|d| !tried.contains(&d.fix.kind) || d.fix.kind == FixKind::ProvisionResources);
        match next {
            Some(diagnosis) => {
                self.idle_violation_ticks = 0;
                self.tracker.record_attempt(diagnosis.fix);
                vec![diagnosis.fix]
            }
            None => {
                // The engine has nothing (new) to suggest.  Wait a bounded
                // amount of time for more data (the detectors need history),
                // then fall back to the expensive universal fix.
                self.idle_violation_ticks += 1;
                if self.idle_violation_ticks > self.max_wait_ticks {
                    self.idle_violation_ticks = 0;
                    let action = FixAction::untargeted(FixKind::FullServiceRestart);
                    self.tracker.record_attempt(action);
                    vec![action]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::{FaultId, FaultKind, FaultSpec};
    use selfheal_sim::{MultiTierService, ServiceConfig};
    use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

    fn run_with_healer<H: Healer>(
        mut healer: H,
        fault: FaultKind,
        target: FaultTarget,
        ticks: u64,
    ) -> (MultiTierService, H, u64) {
        let config = ServiceConfig::tiny();
        let mut service = MultiTierService::new(config);
        let mut workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
            5,
        );
        let mut fixes = 0u64;
        for t in 0..ticks {
            if t == 40 {
                service.inject(FaultSpec::new(FaultId(1), fault, target, 0.9));
            }
            let requests = workload.tick(service.current_tick());
            let outcome = service.tick(&requests);
            for action in healer.observe(&outcome) {
                service.apply_fix(action);
                fixes += 1;
            }
        }
        (service, healer, fixes)
    }

    #[test]
    fn episode_tracker_lifecycle() {
        let mut tracker = EpisodeTracker::new(2, 0);
        assert!(!tracker.in_episode());
        assert!(!tracker.should_act(false));
        assert!(tracker.should_act(true));
        tracker.record_attempt(FixAction::untargeted(FixKind::RepartitionMemory));
        assert!(tracker.in_episode());
        assert!(!tracker.should_act(true), "a fix is in flight");
        assert_eq!(tracker.tried_kinds().len(), 1);
        assert!(!tracker.exhausted());
        tracker.record_attempt(FixAction::untargeted(FixKind::RebootTier));
        assert!(tracker.exhausted());
        assert_eq!(tracker.escalations(), 0);
    }

    #[test]
    fn target_selection_picks_the_implicated_components() {
        let config = ServiceConfig::tiny();
        let service = MultiTierService::new(config);
        let schema = service.schema().clone();
        let mut sample = Sample::zeroed(&schema, 0);
        sample.set(schema.expect_id("app.ejb2_errors"), 5.0);
        sample.set(schema.expect_id("db.table1_accesses"), 99.0);
        sample.set(schema.expect_id("db.util"), 0.99);
        sample.set(schema.expect_id("app.util"), 0.30);

        let micro = target_for_fix(FixKind::MicrorebootEjb, &schema, &sample);
        assert_eq!(micro.target, Some(FaultTarget::Ejb { index: 2 }));
        let stats = target_for_fix(FixKind::UpdateStatistics, &schema, &sample);
        assert_eq!(stats.target, Some(FaultTarget::Table { index: 1 }));
        let provision = target_for_fix(FixKind::ProvisionResources, &schema, &sample);
        assert_eq!(provision.target, Some(FaultTarget::DatabaseTier));
        let restart = target_for_fix(FixKind::FullServiceRestart, &schema, &sample);
        assert_eq!(restart.target, None);
    }

    #[test]
    fn manual_rule_healer_repairs_a_buffer_contention_fault() {
        let config = ServiceConfig::tiny();
        let schema = MultiTierService::new(config.clone()).schema().clone();
        let healer = DiagnosisHealer::manual(&schema, config.slo_targets());
        let (service, healer, fixes) = run_with_healer(
            healer,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            220,
        );
        assert!(fixes >= 1);
        assert!(
            service.active_faults().is_empty(),
            "the fault should be repaired"
        );
        assert!(!service.slo_violated());
        assert_eq!(healer.name(), "manual_rules");
    }

    #[test]
    fn bottleneck_healer_provisions_a_bottlenecked_tier() {
        let config = ServiceConfig::tiny();
        let schema = MultiTierService::new(config.clone()).schema().clone();
        let healer = DiagnosisHealer::bottleneck(&schema, config.slo_targets());
        let (service, _healer, fixes) = run_with_healer(
            healer,
            FaultKind::BottleneckedTier,
            FaultTarget::DatabaseTier,
            400,
        );
        assert!(fixes >= 1);
        assert!(
            service.active_faults().is_empty(),
            "provisioning should eventually repair the bottleneck"
        );
    }

    #[test]
    fn anomaly_healer_microreboots_a_failing_ejb() {
        let config = ServiceConfig::tiny();
        let schema = MultiTierService::new(config.clone()).schema().clone();
        let healer = DiagnosisHealer::anomaly(&schema, config.slo_targets());
        let (service, _healer, fixes) = run_with_healer(
            healer,
            FaultKind::UnhandledException,
            FaultTarget::Ejb { index: 1 },
            300,
        );
        assert!(fixes >= 1);
        assert!(service.active_faults().is_empty());
        assert!(!service.slo_violated());
    }
}
