//! FixSym: the signature-based self-healing engine (Figure 3 of the paper).

use crate::policy::{target_for_fix, EpisodeTracker};
use crate::symptom::SymptomExtractor;
use crate::synopsis::{Learner, Synopsis, SynopsisKind};
use selfheal_faults::{FixAction, FixKind};
use selfheal_sim::scenario::Healer;
use selfheal_sim::service::TickOutcome;
use selfheal_telemetry::Schema;
use std::collections::HashSet;

/// Configuration of the FixSym loop.
#[derive(Debug, Clone, Copy)]
pub struct FixSymConfig {
    /// Maximum fix attempts per failure before escalating (the THRESHOLD of
    /// Figure 3).
    pub threshold: u32,
    /// Minimum synopsis confidence required to act on a suggestion; below
    /// it FixSym still acts (it has nothing better) but hybrid policies use
    /// the value to decide when to defer to a diagnosis engine.
    pub min_confidence: f64,
    /// Ticks to wait after a fix completes before judging whether it worked
    /// ("care should be taken to let the service recover fully").
    pub verify_ticks: u32,
}

impl Default for FixSymConfig {
    fn default() -> Self {
        FixSymConfig {
            threshold: 4,
            min_confidence: 0.05,
            verify_ticks: 25,
        }
    }
}

/// Result of healing one failure episode with [`FixSymEngine::run_episode`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeResult {
    /// Fixes attempted, in order.
    pub attempts: Vec<FixKind>,
    /// The fix that finally worked (`None` when the loop escalated).
    pub successful_fix: Option<FixKind>,
    /// Whether the loop escalated to the expensive universal fix.
    pub escalated: bool,
}

impl EpisodeResult {
    /// Number of attempts made (including the successful one).
    pub fn attempt_count(&self) -> usize {
        self.attempts.len()
    }
}

/// The offline/episodic FixSym engine used by the Figure 4 / Table 3
/// experiments: each failure data point is healed against an oracle that
/// reports whether an attempted fix repaired the failure (in the
/// experiments, the simulator's ground-truth catalog plays that role, just
/// as the authors' simulator did).
#[derive(Debug)]
pub struct FixSymEngine {
    synopsis: Synopsis,
    config: FixSymConfig,
    /// Candidate fix set F of Figure 3.
    candidates: Vec<FixKind>,
    episodes: u64,
    escalations: u64,
}

impl FixSymEngine {
    /// Creates an engine with the given synopsis kind and default config.
    pub fn new(kind: SynopsisKind) -> Self {
        Self::with_config(kind, FixSymConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(kind: SynopsisKind, config: FixSymConfig) -> Self {
        FixSymEngine {
            synopsis: Synopsis::new(kind),
            config,
            candidates: FixKind::CANDIDATES.to_vec(),
            episodes: 0,
            escalations: 0,
        }
    }

    /// The synopsis (e.g. to measure accuracy or training cost).
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }

    /// Mutable access to the synopsis (e.g. to bootstrap it with
    /// preproduction data).
    pub fn synopsis_mut(&mut self) -> &mut Synopsis {
        &mut self.synopsis
    }

    /// Number of failure episodes processed.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Number of episodes that ended in escalation.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Heals one failure data point (Figure 3, lines 4–21).
    ///
    /// `check_fix` is the oracle of line 13: it applies the candidate fix to
    /// the (simulated) service and reports whether the service recovered.
    /// The synopsis is updated after every attempt with the observed
    /// outcome, exactly as in the pseudocode.
    pub fn run_episode<F>(&mut self, symptoms: &[f64], mut check_fix: F) -> EpisodeResult
    where
        F: FnMut(FixKind) -> bool,
    {
        self.episodes += 1;
        let mut attempts = Vec::new();
        let mut tried: HashSet<FixKind> = HashSet::new();
        let mut count = 0u32;

        while count < self.config.threshold {
            // Line 9: query the current synopsis for the probable fix.  With
            // an empty synopsis (first-ever failure) fall back to the
            // cheapest untried candidate, mirroring "domain knowledge may be
            // used" to initialize the synopsis.
            let suggestion = self
                .synopsis
                .suggest_excluding(symptoms, &tried)
                .map(|(fix, _)| fix)
                .or_else(|| self.cheapest_untried(&tried));
            let Some(fix) = suggestion else { break };

            // Lines 11–13: apply the fix and check whether it worked.
            attempts.push(fix);
            tried.insert(fix);
            let fixed = check_fix(fix);

            // Line 15: update the synopsis with the new data point.
            self.synopsis.update(symptoms, fix, fixed);

            if fixed {
                return EpisodeResult {
                    attempts,
                    successful_fix: Some(fix),
                    escalated: false,
                };
            }
            count += 1;
        }

        // Lines 18–20: threshold exceeded — restart the service and notify
        // the administrator; the fix found by the administrator (here: the
        // universal restart) is learned too.
        self.escalations += 1;
        let escalation = FixKind::FullServiceRestart;
        attempts.push(escalation);
        let fixed = check_fix(escalation);
        self.synopsis.update(symptoms, escalation, fixed);
        EpisodeResult {
            attempts,
            successful_fix: if fixed { Some(escalation) } else { None },
            escalated: true,
        }
    }

    fn cheapest_untried(&self, tried: &HashSet<FixKind>) -> Option<FixKind> {
        self.candidates
            .iter()
            .filter(|f| !tried.contains(f) && !f.is_escalation())
            .min_by(|a, b| {
                a.default_cost()
                    .penalty()
                    .partial_cmp(&b.default_cost().penalty())
                    .expect("finite penalties")
            })
            .copied()
    }
}

/// The online FixSym healer: plugs the FixSym loop into the simulator's
/// scenario runner as a [`Healer`], extracting symptoms from the live metric
/// stream, applying fixes through the service's actuator, and judging
/// success from SLO recovery.
///
/// Generic over the [`Learner`] backing it: the default is a privately owned
/// [`Synopsis`]; a fleet passes a [`crate::shared::SharedSynopsis`] handle so
/// every replica's healer learns from — and teaches — the same model.
#[derive(Debug)]
pub struct FixSymHealer<L: Learner = Synopsis> {
    synopsis: L,
    extractor: SymptomExtractor,
    tracker: EpisodeTracker,
    config: FixSymConfig,
    schema: Schema,
    current_symptoms: Option<Vec<f64>>,
}

impl FixSymHealer {
    /// Creates a healer for a service with the given metric schema.
    pub fn new(schema: &Schema, kind: SynopsisKind) -> Self {
        Self::with_config(schema, kind, FixSymConfig::default())
    }

    /// Creates a healer with an explicit configuration.
    pub fn with_config(schema: &Schema, kind: SynopsisKind, config: FixSymConfig) -> Self {
        Self::with_learner(schema, Synopsis::new(kind), config)
    }

    /// The learned synopsis.
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }

    /// Mutable synopsis access (for preproduction bootstrapping).
    pub fn synopsis_mut(&mut self) -> &mut Synopsis {
        &mut self.synopsis
    }
}

impl<L: Learner> FixSymHealer<L> {
    /// Creates a healer around an existing learner (a fleet-shared synopsis
    /// handle, or a pre-bootstrapped private synopsis).
    pub fn with_learner(schema: &Schema, learner: L, config: FixSymConfig) -> Self {
        FixSymHealer {
            synopsis: learner,
            extractor: SymptomExtractor::new(schema, 30, 5),
            tracker: EpisodeTracker::new(config.threshold, config.verify_ticks),
            config,
            schema: schema.clone(),
            current_symptoms: None,
        }
    }

    /// The learner backing this healer.
    pub fn learner(&self) -> &L {
        &self.synopsis
    }
}

impl<L: Learner> Healer for FixSymHealer<L> {
    fn name(&self) -> &str {
        "fixsym"
    }

    fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction> {
        let violated = !outcome.violations.is_empty();
        self.extractor
            .observe(&outcome.sample, !violated && !self.tracker.in_episode());

        // Resolve the outcome of a previously applied fix (check_fix).
        if let Some((fix, success)) = self.tracker.resolve(outcome, violated) {
            if let Some(symptoms) = &self.current_symptoms {
                self.synopsis.record(symptoms, fix.kind, success);
            }
            if success {
                self.current_symptoms = None;
            }
        }

        // Nothing to do while healthy or while a fix is in flight / settling.
        if !self.tracker.should_act(violated) {
            return Vec::new();
        }

        // New failure data point (or next attempt for the current one).
        let symptoms = match self.extractor.symptoms() {
            Some(s) => s,
            None => return Vec::new(),
        };
        if self.current_symptoms.is_none() {
            self.current_symptoms = Some(symptoms.clone());
        }

        if self.tracker.exhausted() {
            // Threshold exceeded: escalate (Figure 3, line 19).
            let action = FixAction::untargeted(FixKind::FullServiceRestart);
            self.tracker.record_attempt(action);
            return vec![action];
        }

        let tried = self.tracker.tried_kinds();
        let suggestion = self
            .synopsis
            .suggest_excluding(&symptoms, &tried)
            .filter(|(_, confidence)| *confidence >= self.config.min_confidence)
            .map(|(fix, _)| fix)
            .or_else(|| {
                FixKind::CANDIDATES
                    .iter()
                    .filter(|f| !tried.contains(f) && !f.is_escalation())
                    .min_by(|a, b| {
                        a.default_cost()
                            .penalty()
                            .partial_cmp(&b.default_cost().penalty())
                            .expect("finite penalties")
                    })
                    .copied()
            });

        match suggestion {
            Some(kind) => {
                let action = target_for_fix(kind, &self.schema, &outcome.sample);
                self.tracker.record_attempt(action);
                vec![action]
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::{FaultKind, FixCatalog};

    fn symptoms_for(kind: usize) -> Vec<f64> {
        match kind {
            0 => vec![9.0, 1.0, 1.0, 1.0],
            1 => vec![1.0, 9.0, 1.0, 1.0],
            _ => vec![1.0, 1.0, 9.0, 1.0],
        }
    }

    #[test]
    fn first_failure_is_healed_by_trial_and_error_then_remembered() {
        let mut engine = FixSymEngine::new(SynopsisKind::NearestNeighbor);
        let correct = FixKind::RepartitionMemory;

        let first = engine.run_episode(&symptoms_for(0), |fix| fix == correct);
        assert_eq!(first.successful_fix, Some(correct));
        assert!(first.attempt_count() >= 1);

        // The same symptoms next time are fixed on the first attempt.
        let second = engine.run_episode(&symptoms_for(0), |fix| fix == correct);
        assert_eq!(second.successful_fix, Some(correct));
        assert_eq!(second.attempt_count(), 1);
        assert_eq!(engine.episodes(), 2);
    }

    #[test]
    fn threshold_exceeded_escalates_to_full_restart() {
        let config = FixSymConfig {
            threshold: 3,
            ..FixSymConfig::default()
        };
        let mut engine = FixSymEngine::with_config(SynopsisKind::NearestNeighbor, config);
        // No narrow fix ever works; only the restart does.
        let result = engine.run_episode(&symptoms_for(1), |fix| fix == FixKind::FullServiceRestart);
        assert!(result.escalated);
        assert_eq!(result.successful_fix, Some(FixKind::FullServiceRestart));
        assert_eq!(
            result.attempts.len(),
            4,
            "three narrow attempts plus the escalation"
        );
        assert_eq!(engine.escalations(), 1);
    }

    #[test]
    fn failed_attempts_are_not_retried_within_an_episode() {
        let mut engine = FixSymEngine::new(SynopsisKind::NearestNeighbor);
        let correct = FixKind::UpdateStatistics;
        let result = engine.run_episode(&symptoms_for(2), |fix| fix == correct);
        let mut seen = HashSet::new();
        for fix in &result.attempts {
            assert!(
                seen.insert(*fix),
                "fix {fix} was retried within the episode"
            );
        }
        assert_eq!(result.successful_fix, Some(correct));
    }

    #[test]
    fn engine_learns_distinct_fixes_for_distinct_failure_signatures() {
        let mut engine = FixSymEngine::new(SynopsisKind::AdaBoost(20));
        let catalog = FixCatalog::standard();
        let mapping = [
            (0usize, catalog.preferred_fix(FaultKind::BufferContention)),
            (1usize, catalog.preferred_fix(FaultKind::DeadlockedThreads)),
            (
                2usize,
                catalog.preferred_fix(FaultKind::SuboptimalQueryPlan),
            ),
        ];
        // Teach the engine by letting it heal each failure type a few times.
        for _ in 0..4 {
            for (class, correct) in mapping {
                engine.run_episode(&symptoms_for(class), |fix| fix == correct);
            }
        }
        // Now every failure type is healed on the first attempt.
        for (class, correct) in mapping {
            let result = engine.run_episode(&symptoms_for(class), |fix| fix == correct);
            assert_eq!(result.attempt_count(), 1, "class {class}");
            assert_eq!(result.successful_fix, Some(correct));
        }
    }

    #[test]
    fn synopsis_statistics_are_exposed() {
        let mut engine = FixSymEngine::new(SynopsisKind::KMeans);
        engine.run_episode(&symptoms_for(0), |fix| fix == FixKind::KillHungQuery);
        assert!(engine.synopsis().correct_fixes_learned() >= 1);
        assert!(engine.synopsis().retrains() >= 1);
    }
}
