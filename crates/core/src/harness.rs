//! Convenience wrapper bundling a simulated service with a healing policy.
//!
//! Examples and benchmarks repeatedly need the same assembly: build a
//! RUBiS-like service, pick a workload, schedule fault injections, choose a
//! healing policy, run, and summarize.  [`SelfHealingService`] packages that
//! assembly behind a small builder so the examples read like the experiment
//! descriptions in the paper.

use crate::fixsym::{FixSymConfig, FixSymHealer};
use crate::hybrid::HybridHealer;
use crate::policy::DiagnosisHealer;
use crate::proactive::ProactiveHealer;
use crate::shared::SharedSynopsis;
use crate::synopsis::SynopsisKind;
use selfheal_faults::InjectionPlan;
use selfheal_sim::scenario::{Healer, NoHealing, ScenarioOutcome, ScenarioRunner};
use selfheal_sim::{MultiTierService, ServiceConfig};
use selfheal_telemetry::Schema;
use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

/// Which healing policy drives the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// No self-healing (baseline).
    None,
    /// The manual rule base.
    ManualRules,
    /// Anomaly-detection diagnosis.
    AnomalyDetection,
    /// Correlation-analysis diagnosis.
    CorrelationAnalysis,
    /// Bottleneck-analysis diagnosis.
    BottleneckAnalysis,
    /// Signature-based FixSym with the given synopsis.
    FixSym(SynopsisKind),
    /// FixSym + diagnosis hybrid.
    Hybrid(SynopsisKind),
    /// Forecast-driven proactive healing.
    Proactive,
}

impl PolicyChoice {
    /// Builds the healer this policy describes, boxed so heterogeneous
    /// policies can drive identical runners (the fleet engine and the
    /// [`SelfHealingService`] builder both construct healers through here).
    pub fn build_healer(
        &self,
        schema: &Schema,
        slo_response_ms: f64,
        slo_error_rate: f64,
    ) -> Box<dyn Healer> {
        match self {
            PolicyChoice::None => Box::new(NoHealing),
            PolicyChoice::ManualRules => Box::new(DiagnosisHealer::manual(
                schema,
                slo_response_ms,
                slo_error_rate,
            )),
            PolicyChoice::AnomalyDetection => Box::new(DiagnosisHealer::anomaly(
                schema,
                slo_response_ms,
                slo_error_rate,
            )),
            PolicyChoice::CorrelationAnalysis => Box::new(DiagnosisHealer::correlation(
                schema,
                slo_response_ms,
                slo_error_rate,
            )),
            PolicyChoice::BottleneckAnalysis => Box::new(DiagnosisHealer::bottleneck(
                schema,
                slo_response_ms,
                slo_error_rate,
            )),
            PolicyChoice::FixSym(kind) => Box::new(FixSymHealer::new(schema, *kind)),
            PolicyChoice::Hybrid(kind) => Box::new(HybridHealer::new(
                schema,
                *kind,
                slo_response_ms,
                slo_error_rate,
            )),
            PolicyChoice::Proactive => Box::new(ProactiveHealer::new(
                schema,
                slo_response_ms,
                slo_error_rate,
            )),
        }
    }

    /// Builds the healer with its signature path wired to a fleet-shared
    /// synopsis instead of a private one.
    ///
    /// Only the signature-based policies (`FixSym`, `Hybrid`) have learned
    /// state to share; every other policy is stateless across replicas and
    /// falls back to [`PolicyChoice::build_healer`].  The `shared` handle's
    /// own kind wins over the kind embedded in the policy, so one fleet
    /// cannot accidentally mix synopsis models.
    pub fn build_healer_shared(
        &self,
        schema: &Schema,
        slo_response_ms: f64,
        slo_error_rate: f64,
        shared: &SharedSynopsis,
    ) -> Box<dyn Healer> {
        match self {
            PolicyChoice::FixSym(_) => Box::new(FixSymHealer::with_learner(
                schema,
                shared.clone(),
                FixSymConfig::default(),
            )),
            PolicyChoice::Hybrid(_) => Box::new(HybridHealer::with_learner(
                schema,
                shared.clone(),
                slo_response_ms,
                slo_error_rate,
            )),
            other => other.build_healer(schema, slo_response_ms, slo_error_rate),
        }
    }

    /// Returns `true` when the policy learns a synopsis that a fleet can
    /// share across replicas.
    pub fn shares_learning(&self) -> bool {
        matches!(self, PolicyChoice::FixSym(_) | PolicyChoice::Hybrid(_))
    }

    /// The synopsis kind embedded in the policy, if any.
    pub fn synopsis_kind(&self) -> Option<SynopsisKind> {
        match self {
            PolicyChoice::FixSym(kind) | PolicyChoice::Hybrid(kind) => Some(*kind),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            PolicyChoice::None => "no_healing".to_string(),
            PolicyChoice::ManualRules => "manual_rules".to_string(),
            PolicyChoice::AnomalyDetection => "anomaly_detection".to_string(),
            PolicyChoice::CorrelationAnalysis => "correlation_analysis".to_string(),
            PolicyChoice::BottleneckAnalysis => "bottleneck_analysis".to_string(),
            PolicyChoice::FixSym(kind) => format!("fixsym_{}", kind.label()),
            PolicyChoice::Hybrid(kind) => format!("hybrid_{}", kind.label()),
            PolicyChoice::Proactive => "proactive".to_string(),
        }
    }
}

/// Builder/runner bundling service, workload, injections, and policy.
#[derive(Debug)]
pub struct SelfHealingService {
    config: ServiceConfig,
    mix: WorkloadMix,
    arrivals: ArrivalProcess,
    injections: InjectionPlan,
    policy: PolicyChoice,
    seed: u64,
}

impl SelfHealingService {
    /// Starts a builder with the RUBiS-like default configuration, the
    /// bidding mix at 40 requests/tick, no injections, and no healing.
    pub fn builder() -> Self {
        SelfHealingService {
            config: ServiceConfig::rubis_default(),
            mix: WorkloadMix::bidding(),
            arrivals: ArrivalProcess::Poisson { rate: 40.0 },
            injections: InjectionPlan::empty(),
            policy: PolicyChoice::None,
            seed: 42,
        }
    }

    /// Overrides the service configuration.
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the workload mix.
    pub fn workload(mut self, mix: WorkloadMix, arrivals: ArrivalProcess) -> Self {
        self.mix = mix;
        self.arrivals = arrivals;
        self
    }

    /// Sets the fault-injection plan.
    pub fn injections(mut self, plan: InjectionPlan) -> Self {
        self.injections = plan;
        self
    }

    /// Chooses the healing policy.
    pub fn policy(mut self, policy: PolicyChoice) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The chosen policy.
    pub fn policy_choice(&self) -> PolicyChoice {
        self.policy
    }

    /// Assembles the runner this builder describes without driving it —
    /// the fleet engine uses this to obtain resumable replicas it can step
    /// itself, with an optional fleet-shared synopsis wired into the healer.
    pub fn into_runner(self, shared: Option<&SharedSynopsis>) -> ScenarioRunner<Box<dyn Healer>> {
        let service = MultiTierService::new(self.config.clone());
        let schema = service.schema().clone();
        let workload = TraceGenerator::new(self.mix.clone(), self.arrivals.clone(), self.seed);
        let healer = match shared {
            Some(shared) => self.policy.build_healer_shared(
                &schema,
                self.config.slo_response_ms,
                self.config.slo_error_rate,
                shared,
            ),
            None => self.policy.build_healer(
                &schema,
                self.config.slo_response_ms,
                self.config.slo_error_rate,
            ),
        };
        ScenarioRunner::new(service, workload, self.injections, healer)
    }

    /// Runs the scenario for `ticks` ticks.
    pub fn run(self, ticks: u64) -> ScenarioOutcome {
        let (outcome, _) = self.into_runner(None).run(ticks);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::{FaultKind, FaultTarget, InjectionPlanBuilder};

    #[test]
    fn builder_defaults_run_cleanly() {
        let outcome = SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .run(60);
        assert_eq!(outcome.ticks, 60);
        assert_eq!(outcome.violation_fraction, 0.0);
    }

    #[test]
    fn hybrid_policy_beats_no_healing_on_an_injected_fault() {
        let config = ServiceConfig::tiny();
        let plan = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
            .inject(
                40,
                FaultKind::BufferContention,
                FaultTarget::DatabaseTier,
                0.9,
            )
            .build();

        let unhealed = SelfHealingService::builder()
            .config(config.clone())
            .injections(plan.clone())
            .policy(PolicyChoice::None)
            .run(300);
        let healed = SelfHealingService::builder()
            .config(config)
            .injections(plan)
            .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
            .run(300);

        assert!(
            healed.violation_fraction < unhealed.violation_fraction,
            "healed {} vs unhealed {}",
            healed.violation_fraction,
            unhealed.violation_fraction
        );
        assert!(healed.fixes_initiated >= 1);
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<String> = [
            PolicyChoice::None,
            PolicyChoice::ManualRules,
            PolicyChoice::AnomalyDetection,
            PolicyChoice::CorrelationAnalysis,
            PolicyChoice::BottleneckAnalysis,
            PolicyChoice::FixSym(SynopsisKind::NearestNeighbor),
            PolicyChoice::Hybrid(SynopsisKind::AdaBoost(60)),
            PolicyChoice::Proactive,
        ]
        .iter()
        .map(PolicyChoice::label)
        .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }
}
