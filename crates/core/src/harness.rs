//! Convenience wrapper bundling a simulated service with a healing policy.
//!
//! Examples and benchmarks repeatedly need the same assembly: build a
//! RUBiS-like service, pick a workload, schedule fault injections, choose a
//! healing policy, run, and summarize.  [`SelfHealingService`] packages that
//! assembly behind a small builder so the examples read like the experiment
//! descriptions in the paper.
//!
//! Six declarative enums keep configurations data, not code:
//! [`PolicyChoice`] names a healing policy, [`WorkloadChoice`] names a
//! workload shape (synthetic mix + arrivals, recorded-trace replay, or a
//! burst storm) that can be instantiated as a fresh [`TraceSource`] for
//! every replica of a fleet, with per-replica seeds and phase shifts,
//! [`FaultChoice`] names a fault schedule (a scripted plan, stochastic
//! demographic generation from a cause mix, a catalog coverage sweep, or a
//! tick-wise composition) as a recipe for a [`FaultSource`],
//! [`LearnerChoice`] names where learned synopsis state lives (a private
//! per-replica model, one lock-shared model, or symptom-space shards) as a
//! recipe for a [`SynopsisStore`], and [`EventChoice`] names a fleet-wide
//! cross-replica event (a correlated fault storm — uniform or
//! CauseMix-catalog — or a workload surge) that the fleet's tick-sliced
//! scheduler resolves into per-replica actions, and [`ReactiveChoice`]
//! names a *state-observing* chaos engine (an adversary targeting the
//! weakest replica, or a dependency cascade) evaluated at deterministic
//! epoch barriers.

use crate::fixsym::{FixSymConfig, FixSymHealer};
use crate::hybrid::HybridHealer;
use crate::policy::DiagnosisHealer;
use crate::proactive::ProactiveHealer;
use crate::shared::SharedSynopsis;
use crate::snapshot::SynopsisSnapshot;
use crate::store::{LockedStore, PrivateStore, ShardedStore, SynopsisStore};
use crate::synopsis::SynopsisKind;
use selfheal_faults::{
    CatalogSweep, ComposedSource, FaultKind, FaultSource, InjectionPlan, MixSource, OperatorSource,
    ScriptedSource, SeasonalSource, ServiceProfile, MIX_FAULT_ID_BASE, OPERATOR_FAULT_ID_BASE,
    SEASON_FAULT_ID_BASE, SWEEP_FAULT_ID_BASE,
};
use selfheal_sim::scenario::{Healer, NoHealing, ScenarioOutcome, ScenarioRunner};
use selfheal_sim::seeds::{split_seed, SeedStream};
use selfheal_sim::{MultiTierService, ServiceConfig};
use selfheal_telemetry::{Schema, SloTargets};
use selfheal_workload::{
    ArrivalProcess, BurstSource, RecordedTrace, ReplayMode, ReplaySource, TraceGenerator,
    TraceSource, WorkloadMix,
};
use std::sync::Arc;

/// Which healing policy drives the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// No self-healing (baseline).
    None,
    /// The manual rule base.
    ManualRules,
    /// Anomaly-detection diagnosis.
    AnomalyDetection,
    /// Correlation-analysis diagnosis.
    CorrelationAnalysis,
    /// Bottleneck-analysis diagnosis.
    BottleneckAnalysis,
    /// Signature-based FixSym with the given synopsis.
    FixSym(SynopsisKind),
    /// FixSym + diagnosis hybrid.
    Hybrid(SynopsisKind),
    /// Forecast-driven proactive healing.
    Proactive,
}

impl PolicyChoice {
    /// Builds the healer this policy describes, boxed so heterogeneous
    /// policies can drive identical runners (the fleet engine and the
    /// [`SelfHealingService`] builder both construct healers through here).
    pub fn build_healer(&self, schema: &Schema, targets: SloTargets) -> Box<dyn Healer> {
        match self {
            PolicyChoice::None => Box::new(NoHealing),
            PolicyChoice::ManualRules => Box::new(DiagnosisHealer::manual(schema, targets)),
            PolicyChoice::AnomalyDetection => Box::new(DiagnosisHealer::anomaly(schema, targets)),
            PolicyChoice::CorrelationAnalysis => {
                Box::new(DiagnosisHealer::correlation(schema, targets))
            }
            PolicyChoice::BottleneckAnalysis => {
                Box::new(DiagnosisHealer::bottleneck(schema, targets))
            }
            PolicyChoice::FixSym(kind) => Box::new(FixSymHealer::new(schema, *kind)),
            PolicyChoice::Hybrid(kind) => Box::new(HybridHealer::new(schema, *kind, targets)),
            PolicyChoice::Proactive => Box::new(ProactiveHealer::new(schema, targets)),
        }
    }

    /// Builds the healer with its signature path wired to the given
    /// [`SynopsisStore`] handle instead of a freshly built private synopsis.
    ///
    /// Only the signature-based policies (`FixSym`, `Hybrid`) have learned
    /// state to store; every other policy is stateless across replicas and
    /// falls back to [`PolicyChoice::build_healer`].  The store's own kind
    /// wins over the kind embedded in the policy, so one fleet cannot
    /// accidentally mix synopsis models.
    pub fn build_healer_stored(
        &self,
        schema: &Schema,
        targets: SloTargets,
        store: Box<dyn SynopsisStore>,
    ) -> Box<dyn Healer> {
        match self {
            PolicyChoice::FixSym(_) => Box::new(FixSymHealer::with_learner(
                schema,
                store,
                FixSymConfig::default(),
            )),
            PolicyChoice::Hybrid(_) => Box::new(HybridHealer::with_learner(schema, store, targets)),
            other => other.build_healer(schema, targets),
        }
    }

    /// Back-compat shorthand for [`PolicyChoice::build_healer_stored`] with
    /// a [`SharedSynopsis`] (i.e. [`LockedStore`]) handle.
    pub fn build_healer_shared(
        &self,
        schema: &Schema,
        targets: SloTargets,
        shared: &SharedSynopsis,
    ) -> Box<dyn Healer> {
        self.build_healer_stored(schema, targets, Box::new(shared.clone()))
    }

    /// Returns `true` when the policy learns a synopsis that a fleet can
    /// share across replicas.
    pub fn shares_learning(&self) -> bool {
        matches!(self, PolicyChoice::FixSym(_) | PolicyChoice::Hybrid(_))
    }

    /// The synopsis kind embedded in the policy, if any.
    pub fn synopsis_kind(&self) -> Option<SynopsisKind> {
        match self {
            PolicyChoice::FixSym(kind) | PolicyChoice::Hybrid(kind) => Some(*kind),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            PolicyChoice::None => "no_healing".to_string(),
            PolicyChoice::ManualRules => "manual_rules".to_string(),
            PolicyChoice::AnomalyDetection => "anomaly_detection".to_string(),
            PolicyChoice::CorrelationAnalysis => "correlation_analysis".to_string(),
            PolicyChoice::BottleneckAnalysis => "bottleneck_analysis".to_string(),
            PolicyChoice::FixSym(kind) => format!("fixsym_{}", kind.label()),
            PolicyChoice::Hybrid(kind) => format!("hybrid_{}", kind.label()),
            PolicyChoice::Proactive => "proactive".to_string(),
        }
    }
}

/// A fleet-wide event — the cross-replica mirror of [`PolicyChoice`],
/// [`WorkloadChoice`], and [`LearnerChoice`], so fleet configs name their
/// correlated-failure scenarios declaratively.
///
/// A choice is pure data: the fleet engine's event machinery resolves it
/// against the fleet's shape (replica count, tick horizon) into per-replica
/// actions at exact ticks, so an event-laden run stays a pure function of
/// the configuration — at any worker count and any tick-slice width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventChoice {
    /// A correlated fault storm: at `at_tick`, inject a fault of `kind`
    /// (with `severity`) into a deterministic, evenly spread `fraction` of
    /// the fleet's replicas (see [`selfheal_faults::StormSpec`]).
    FaultStorm {
        /// Tick at which the storm strikes every victim at once.
        at_tick: u64,
        /// The failure class every victim receives.
        kind: FaultKind,
        /// Severity of each injected fault, `[0, 1]`.
        severity: f64,
        /// Fraction of the fleet hit, `[0, 1]`.
        fraction: f64,
    },
    /// A correlated *catalog* storm: at `at_tick`, a deterministic
    /// `fraction` of the fleet is hit, each victim's failure class drawn
    /// from `profile`'s cause mix (keyed by the fleet's base seed) instead
    /// of one shared class — the Figure 1 demographics as a correlated
    /// outage (see [`selfheal_faults::StormSpec::catalog`]).
    CatalogStorm {
        /// Tick at which the storm strikes every victim at once.
        at_tick: u64,
        /// The service profile whose cause mix supplies each victim's
        /// failure class.
        profile: ServiceProfile,
        /// Severity of each injected fault, `[0, 1]`.
        severity: f64,
        /// Fraction of the fleet hit, `[0, 1]`.
        fraction: f64,
    },
    /// A fleet-wide workload surge: for `duration_ticks` starting at
    /// `at_tick`, every replica's request batches are amplified by `factor`
    /// (a correlated flash crowd overlaid on whatever workload the replicas
    /// already run).
    WorkloadSurge {
        /// First surged tick.
        at_tick: u64,
        /// How many ticks the surge lasts.
        duration_ticks: u64,
        /// Request-batch amplification factor (≥ 1.0).
        factor: f64,
    },
}

impl EventChoice {
    /// Fault-storm shorthand with the scripted experiments' default
    /// severity of 0.9.
    pub fn storm(at_tick: u64, kind: FaultKind, fraction: f64) -> Self {
        EventChoice::FaultStorm {
            at_tick,
            kind,
            severity: 0.9,
            fraction,
        }
    }

    /// Catalog-storm shorthand with the default severity of 0.9.
    pub fn catalog_storm(at_tick: u64, profile: ServiceProfile, fraction: f64) -> Self {
        EventChoice::CatalogStorm {
            at_tick,
            profile,
            severity: 0.9,
            fraction,
        }
    }

    /// Workload-surge shorthand.
    pub fn surge(at_tick: u64, duration_ticks: u64, factor: f64) -> Self {
        EventChoice::WorkloadSurge {
            at_tick,
            duration_ticks,
            factor,
        }
    }
}

/// A *reactive* chaos engine — the state-observing mirror of
/// [`EventChoice`].  Where an event's schedule is fixed when the run is
/// configured, a reactive engine watches the fleet's health at deterministic
/// epoch barriers and aims its next blow at what it sees: the adversary
/// always strikes the currently-weakest replica, the cascade follows open
/// failures along the service-dependency topology.
///
/// A choice is pure data: the fleet engine bakes it into a
/// `ReactiveEvent` (see the fleet crate's `reactive` module), which is
/// evaluated only at fixed barrier ticks — never mid-slice — so reactive
/// runs stay a pure function of the configuration at any worker count and
/// any compatible tick-slice width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReactiveChoice {
    /// An adversarial injector: at each epoch barrier in
    /// `[start_tick, until_tick)`, inject one fault of `kind` into the
    /// replica with the most open failure episodes (ties broken toward the
    /// lowest replica id) — a worst-case scheduler that piles on wherever
    /// the fleet is already hurting.
    Adversary {
        /// The failure class every strike injects.
        kind: FaultKind,
        /// Severity of each injected fault, `[0, 1]`.
        severity: f64,
        /// First tick (inclusive) at which strikes may land.
        start_tick: u64,
        /// Tick (exclusive) after which the adversary stands down.
        until_tick: u64,
    },
    /// A dependency cascade: when a replica *newly* enters an open failure
    /// episode, its downstream dependent (ring topology: replica `r` feeds
    /// `r + 1 mod n`) receives a correlated fault of `kind` at the next
    /// epoch barrier, up to `budget` propagations in total.
    Cascade {
        /// The failure class propagated to dependents.
        kind: FaultKind,
        /// Severity of each propagated fault, `[0, 1]`.
        severity: f64,
        /// Maximum number of propagations over the whole run.
        budget: usize,
        /// Tick (exclusive) after which the cascade stops propagating.
        until_tick: u64,
    },
}

impl ReactiveChoice {
    /// Adversary shorthand.
    pub fn adversary(kind: FaultKind, severity: f64, start_tick: u64, until_tick: u64) -> Self {
        ReactiveChoice::Adversary {
            kind,
            severity,
            start_tick,
            until_tick,
        }
    }

    /// Cascade shorthand.
    pub fn cascade(kind: FaultKind, severity: f64, budget: usize, until_tick: u64) -> Self {
        ReactiveChoice::Cascade {
            kind,
            severity,
            budget,
            until_tick,
        }
    }

    /// Display label (used by bench output alongside the other choice
    /// labels).
    pub fn label(&self) -> String {
        match self {
            ReactiveChoice::Adversary { kind, .. } => format!("adversary_{}", kind.label()),
            ReactiveChoice::Cascade { kind, .. } => format!("cascade_{}", kind.label()),
        }
    }
}

/// Which fault schedule drives the service — the fault-side mirror of
/// [`PolicyChoice`], [`WorkloadChoice`], and [`LearnerChoice`], so benches,
/// examples, and fleet configs name their failure scenarios declaratively.
///
/// A choice is a *recipe*: [`FaultChoice::source_for_replica`] bakes it
/// into a concrete [`FaultSource`] for one replica.  Fleet engines pass a
/// per-replica seed split via
/// [`selfheal_sim::seeds::split_seed`]`(base, replica, SeedStream::Faults)`,
/// so sibling replicas' stochastic fault streams decorrelate while staying
/// a pure function of `(base_seed, replica)` — at any worker count and any
/// tick-slice width.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultChoice {
    /// A hand-scripted [`InjectionPlan`], applied identically to every
    /// replica (the Table 1 fault/fix-matrix experiments).
    Scripted(InjectionPlan),
    /// Stochastic demographic generation: at each tick in
    /// `[0, active_ticks)` a fault fires with probability `rate`, its kind
    /// drawn from `profile`'s cause mix (see
    /// [`selfheal_faults::MixSource`]).
    Mix {
        /// The service profile whose Figure 1 demographics drive sampling.
        profile: ServiceProfile,
        /// Per-tick firing probability, clamped to `[0, 1]`.
        rate: f64,
        /// Faults may fire only in ticks `[0, active_ticks)`; bound this
        /// below the run length so the healer gets a quiet tail to drain
        /// every episode.
        active_ticks: u64,
        /// EJB count random targets are drawn from.
        ejbs: usize,
        /// Table count random targets are drawn from.
        tables: usize,
        /// Index count random targets are drawn from.
        indexes: usize,
    },
    /// One fault of every [`selfheal_faults::FixCatalog`] failure class at
    /// a fixed cadence (see [`selfheal_faults::CatalogSweep`]) — the FixSym
    /// training-coverage run.
    Sweep {
        /// Tick of the first injected class.
        start_tick: u64,
        /// Ticks between consecutive classes.
        spacing_ticks: u64,
        /// Severity of every injected fault.
        severity: f64,
    },
    /// Seeded fault *seasons*: demographic generation whose per-tick rate
    /// is re-drawn from `rates` at every `season_ticks` boundary by a
    /// schedule keyed on `schedule_seed` alone (see
    /// [`selfheal_faults::SeasonalSource`]).  Replicas with different draw
    /// seeds but one `schedule_seed` share calm and stormy seasons, giving
    /// the fleet correlated load *epochs* without correlated faults.
    Seasons {
        /// The service profile whose Figure 1 demographics drive sampling.
        profile: ServiceProfile,
        /// Candidate per-tick rates the schedule cycles through.
        rates: Vec<f64>,
        /// Ticks each season lasts before the rate is re-drawn.
        season_ticks: u64,
        /// Seed of the fleet-wide season schedule (deliberately *not* the
        /// per-replica draw seed, so siblings share seasons).
        schedule_seed: u64,
        /// Faults may fire only in ticks `[0, active_ticks)`.
        active_ticks: u64,
        /// EJB count random targets are drawn from.
        ejbs: usize,
        /// Table count random targets are drawn from.
        tables: usize,
        /// Index count random targets are drawn from.
        indexes: usize,
    },
    /// A live flaky operator: at each tick an operator action fires with
    /// probability `action_rate` and manifests as a fault per the
    /// [`selfheal_faults::OperatorModel`]'s error rate — the Figure 1
    /// operator-error demographics as an online [`FaultSource`] (see
    /// [`selfheal_faults::OperatorSource`]).
    Operator {
        /// Per-tick probability that the operator acts at all.
        action_rate: f64,
        /// Actions may fire only in ticks `[0, active_ticks)`.
        active_ticks: u64,
    },
    /// A tick-wise merge of child recipes; each child gets a decorrelated
    /// seed and a disjoint fault-id lane, so e.g. a scripted scenario can
    /// ride on top of background demographic noise.
    Composed(Vec<FaultChoice>),
}

impl Default for FaultChoice {
    /// No faults: an empty scripted plan.
    fn default() -> Self {
        FaultChoice::Scripted(InjectionPlan::empty())
    }
}

impl FaultChoice {
    /// Scripted-plan shorthand.
    pub fn scripted(plan: InjectionPlan) -> Self {
        FaultChoice::Scripted(plan)
    }

    /// Demographic-mix shorthand: unbounded window, the workspace's
    /// default tiny topology (4 EJBs, 3 tables, 1 index).  Chain
    /// [`FaultChoice::active_for`] to bound the window for finite runs.
    pub fn mix(profile: ServiceProfile, rate: f64) -> Self {
        FaultChoice::Mix {
            profile,
            rate,
            active_ticks: u64::MAX,
            ejbs: 4,
            tables: 3,
            indexes: 1,
        }
    }

    /// Demographic-mix shorthand with the target topology taken from a
    /// [`ServiceConfig`].
    pub fn mix_for(profile: ServiceProfile, rate: f64, config: &ServiceConfig) -> Self {
        FaultChoice::Mix {
            profile,
            rate,
            active_ticks: u64::MAX,
            ejbs: config.ejb_count,
            tables: config.table_count,
            indexes: 1,
        }
    }

    /// Catalog-sweep shorthand with the default severity of 0.9.
    pub fn sweep(start_tick: u64, spacing_ticks: u64) -> Self {
        FaultChoice::Sweep {
            start_tick,
            spacing_ticks,
            severity: 0.9,
        }
    }

    /// Fault-season shorthand: unbounded window, the workspace's default
    /// tiny topology, and a schedule keyed on seed 0.  Chain
    /// [`FaultChoice::active_for`] to bound the window for finite runs.
    pub fn seasons(profile: ServiceProfile, rates: Vec<f64>, season_ticks: u64) -> Self {
        FaultChoice::Seasons {
            profile,
            rates,
            season_ticks,
            schedule_seed: 0,
            active_ticks: u64::MAX,
            ejbs: 4,
            tables: 3,
            indexes: 1,
        }
    }

    /// Flaky-operator shorthand with an unbounded window.
    pub fn operator(action_rate: f64) -> Self {
        FaultChoice::Operator {
            action_rate,
            active_ticks: u64::MAX,
        }
    }

    /// Composition shorthand.
    pub fn composed(children: impl IntoIterator<Item = FaultChoice>) -> Self {
        FaultChoice::Composed(children.into_iter().collect())
    }

    /// Bounds every `Mix`, `Seasons`, and `Operator` window (recursively,
    /// for compositions) to `[0, active_ticks)`.  No-op for scripted plans
    /// and sweeps, whose schedules are already finite.
    pub fn active_for(mut self, active_ticks: u64) -> Self {
        match &mut self {
            FaultChoice::Mix {
                active_ticks: window,
                ..
            }
            | FaultChoice::Seasons {
                active_ticks: window,
                ..
            }
            | FaultChoice::Operator {
                active_ticks: window,
                ..
            } => *window = active_ticks,
            FaultChoice::Composed(children) => {
                for child in std::mem::take(children) {
                    children.push(child.active_for(active_ticks));
                }
            }
            FaultChoice::Scripted(_) | FaultChoice::Sweep { .. } => {}
        }
        self
    }

    /// Display label (used by bench output alongside policy, workload, and
    /// learner labels).
    pub fn label(&self) -> String {
        match self {
            FaultChoice::Scripted(plan) if plan.is_empty() => "none".to_string(),
            FaultChoice::Scripted(_) => "scripted".to_string(),
            FaultChoice::Mix { profile, rate, .. } => {
                format!("mix_{}_{rate}", profile.name().to_lowercase())
            }
            FaultChoice::Sweep { .. } => "sweep".to_string(),
            FaultChoice::Seasons {
                profile,
                season_ticks,
                ..
            } => format!("seasons_{}_{season_ticks}", profile.name().to_lowercase()),
            FaultChoice::Operator { action_rate, .. } => format!("operator_{action_rate}"),
            FaultChoice::Composed(children) => format!("composed_{}", children.len()),
        }
    }

    /// Bakes the choice into a source for replica `replica` of a fleet.
    ///
    /// `seed` feeds stochastic generation; callers split it per replica via
    /// [`selfheal_sim::seeds::split_seed`] with [`SeedStream::Faults`], so
    /// a replica's fault stream is a pure function of `(base_seed, replica)`
    /// — the fleet determinism tests rely on this.  Scripted plans and
    /// sweeps ignore the seed (every replica runs the same schedule).
    pub fn source_for_replica(&self, seed: u64, _replica: u64) -> Box<dyn FaultSource> {
        let mut lane = 0;
        self.build_lane(seed, &mut lane)
    }

    /// Bakes the choice into a single (replica-0) source.
    pub fn build_source(&self, seed: u64) -> Box<dyn FaultSource> {
        self.source_for_replica(seed, 0)
    }

    /// Builds the source with its fault-id namespace shifted into the next
    /// free lane.  `lane` is a recipe-global counter: every id-bearing leaf
    /// (mix, sweep) claims one sequential lane regardless of composition
    /// nesting, so no two leaves of one recipe can ever share an id base.
    fn build_lane(&self, seed: u64, lane: &mut u64) -> Box<dyn FaultSource> {
        fn claim_lane(lane: &mut u64) -> u64 {
            let shift = *lane << 36;
            *lane += 1;
            shift
        }
        match self {
            FaultChoice::Scripted(plan) => Box::new(ScriptedSource::new(plan.clone())),
            FaultChoice::Mix {
                profile,
                rate,
                active_ticks,
                ejbs,
                tables,
                indexes,
            } => Box::new(
                MixSource::new(*profile, *rate, seed)
                    .active_for(*active_ticks)
                    .with_topology(*ejbs, *tables, *indexes)
                    .with_id_base(MIX_FAULT_ID_BASE + claim_lane(lane)),
            ),
            FaultChoice::Sweep {
                start_tick,
                spacing_ticks,
                severity,
            } => Box::new(
                CatalogSweep::new(*start_tick, *spacing_ticks)
                    .with_severity(*severity)
                    .with_id_base(SWEEP_FAULT_ID_BASE + claim_lane(lane)),
            ),
            FaultChoice::Seasons {
                profile,
                rates,
                season_ticks,
                schedule_seed,
                active_ticks,
                ejbs,
                tables,
                indexes,
            } => Box::new(
                SeasonalSource::new(*profile, rates.clone(), *season_ticks, seed, *schedule_seed)
                    .active_for(*active_ticks)
                    .with_topology(*ejbs, *tables, *indexes)
                    .with_id_base(SEASON_FAULT_ID_BASE + claim_lane(lane)),
            ),
            FaultChoice::Operator {
                action_rate,
                active_ticks,
            } => Box::new(
                OperatorSource::new(*action_rate, seed)
                    .active_for(*active_ticks)
                    .with_id_base(OPERATOR_FAULT_ID_BASE + claim_lane(lane)),
            ),
            FaultChoice::Composed(children) => {
                let mut composed = ComposedSource::new();
                for (i, child) in children.iter().enumerate() {
                    let child_seed = split_seed(seed, i as u64, SeedStream::Faults);
                    composed = composed.with_boxed(child.build_lane(child_seed, lane));
                }
                Box::new(composed)
            }
        }
    }
}

/// Where learned synopsis state lives — the learning-side mirror of
/// [`PolicyChoice`] and [`WorkloadChoice`], so fleet configs name their
/// learning topology declaratively.
///
/// A choice is a *recipe*: [`LearnerChoice::build_store`] bakes it into a
/// concrete [`SynopsisStore`] of a given [`SynopsisKind`].  Shared recipes
/// (`Locked`, `Sharded`) are built **once** per fleet and handed to replicas
/// via [`SynopsisStore::clone_store`]; the `Private` recipe is built fresh
/// per replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LearnerChoice {
    /// Every replica learns alone in its own [`PrivateStore`] (the paper's
    /// single-instance setup).
    #[default]
    Private,
    /// One fleet-wide [`LockedStore`]: a single synopsis behind one lock,
    /// draining queued updates in batches of `batch`.
    Locked {
        /// Queued updates that trigger one combined drain + retrain.
        batch: usize,
    },
    /// A fleet-wide [`ShardedStore`]: symptom space is partitioned across
    /// `shards` k-means-routed synopses, each with its own lock and batch
    /// queue, so replicas healing different failure modes never contend.
    Sharded {
        /// Number of symptom-space shards (1 behaves exactly like `Locked`).
        shards: usize,
        /// Queued updates per shard that trigger a drain + retrain.
        batch: usize,
    },
}

impl LearnerChoice {
    /// Lock-shared learning with the default batch threshold.
    pub fn locked() -> Self {
        LearnerChoice::Locked {
            batch: LockedStore::DEFAULT_BATCH,
        }
    }

    /// Sharded learning with the default batch threshold.
    pub fn sharded(shards: usize) -> Self {
        LearnerChoice::Sharded {
            shards,
            batch: LockedStore::DEFAULT_BATCH,
        }
    }

    /// Whether the store this choice builds is shared by every replica of a
    /// fleet (`true`) or owned per replica (`false`).
    pub fn is_shared(&self) -> bool {
        !matches!(self, LearnerChoice::Private)
    }

    /// Bakes the choice into a concrete store for a synopsis of `kind`.
    pub fn build_store(&self, kind: SynopsisKind) -> Box<dyn SynopsisStore> {
        match self {
            LearnerChoice::Private => Box::new(PrivateStore::new(kind)),
            LearnerChoice::Locked { batch } => Box::new(LockedStore::with_batch(kind, *batch)),
            LearnerChoice::Sharded { shards, batch } => {
                Box::new(ShardedStore::with_batch(kind, *shards, *batch))
            }
        }
    }

    /// [`build_store`](Self::build_store), optionally warm-started: when a
    /// snapshot is given, its experience is restored into the fresh store
    /// before first use.  The one place warm-start semantics live — the
    /// harness builder and the fleet engine both construct through here.
    pub fn build_store_warm(
        &self,
        kind: SynopsisKind,
        warm_start: Option<&SynopsisSnapshot>,
    ) -> Box<dyn SynopsisStore> {
        let mut store = self.build_store(kind);
        if let Some(snapshot) = warm_start {
            store.restore(snapshot);
        }
        store
    }

    /// Display label (used by bench output alongside policy and workload
    /// labels).
    pub fn label(&self) -> String {
        match self {
            LearnerChoice::Private => "private".to_string(),
            LearnerChoice::Locked { .. } => "locked".to_string(),
            LearnerChoice::Sharded { shards, .. } => format!("sharded_{shards}"),
        }
    }
}

/// Which workload shape drives the service — the workload-side mirror of
/// [`PolicyChoice`], so benches, examples, and fleet configs stay
/// declarative.
///
/// A choice is a *recipe*: [`WorkloadChoice::source_for_replica`] bakes it
/// into a concrete [`TraceSource`] for one replica, applying the replica's
/// seed (synthetic randomness) and phase shift (replay/burst stagger).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadChoice {
    /// Synthetic arrivals: a [`WorkloadMix`] sampled under an
    /// [`ArrivalProcess`] (the paper's browsing/bidding experiments).
    Synthetic {
        /// Distribution over request kinds.
        mix: WorkloadMix,
        /// Open-loop arrival model.
        arrivals: ArrivalProcess,
    },
    /// Replay of a recorded trace.  Replica `i` starts `i * phase_step`
    /// ticks into the trace (ROADMAP's per-replica phase shifts), so a
    /// fleet spreads over the trace instead of marching in lockstep.  The
    /// trace is behind an [`Arc`]: every replica references one allocation.
    Replay {
        /// The recorded trace to replay.
        trace: Arc<RecordedTrace>,
        /// Wrap around vs go quiet when the trace ends.
        mode: ReplayMode,
        /// Per-replica phase increment, in ticks (0 = all replicas aligned).
        phase_step: u64,
    },
    /// Recurring flash-crowd storms on a Poisson baseline (see
    /// [`BurstSource`]).  With `phase_step = 0` every replica's storms land
    /// in the same tick windows (correlated flash crowds); a positive step
    /// staggers replica `i`'s storm schedule by `i * phase_step` ticks.
    Burst {
        /// Distribution over request kinds.
        mix: WorkloadMix,
        /// Baseline requests per tick.
        base_rate: f64,
        /// Rate multiplier inside each storm.
        burst_factor: f64,
        /// Ticks between storm starts.
        period_ticks: u64,
        /// Ticks each storm lasts (must be shorter than the period).
        burst_ticks: u64,
        /// Per-replica storm-schedule offset, in ticks (0 = correlated).
        phase_step: u64,
    },
}

impl Default for WorkloadChoice {
    /// The workspace-wide default: the RUBiS bidding mix at Poisson 40
    /// requests/tick.
    fn default() -> Self {
        WorkloadChoice::Synthetic {
            mix: WorkloadMix::bidding(),
            arrivals: ArrivalProcess::Poisson { rate: 40.0 },
        }
    }
}

impl WorkloadChoice {
    /// Synthetic workload shorthand.
    pub fn synthetic(mix: WorkloadMix, arrivals: ArrivalProcess) -> Self {
        WorkloadChoice::Synthetic { mix, arrivals }
    }

    /// Replay shorthand.
    pub fn replay(trace: RecordedTrace, mode: ReplayMode, phase_step: u64) -> Self {
        WorkloadChoice::Replay {
            trace: Arc::new(trace),
            mode,
            phase_step,
        }
    }

    /// Burst-storm shorthand: storms correlated across replicas
    /// (`phase_step = 0`); see [`WorkloadChoice::burst_staggered`].
    pub fn burst(
        mix: WorkloadMix,
        base_rate: f64,
        burst_factor: f64,
        period_ticks: u64,
        burst_ticks: u64,
    ) -> Self {
        Self::burst_staggered(mix, base_rate, burst_factor, period_ticks, burst_ticks, 0)
    }

    /// Burst-storm shorthand with replica `i`'s storm schedule shifted by
    /// `i * phase_step` ticks.
    pub fn burst_staggered(
        mix: WorkloadMix,
        base_rate: f64,
        burst_factor: f64,
        period_ticks: u64,
        burst_ticks: u64,
        phase_step: u64,
    ) -> Self {
        WorkloadChoice::Burst {
            mix,
            base_rate,
            burst_factor,
            period_ticks,
            burst_ticks,
            phase_step,
        }
    }

    /// Display label (used by bench output alongside the policy label).
    pub fn label(&self) -> String {
        match self {
            WorkloadChoice::Synthetic { mix, .. } => format!("synthetic_{}", mix.name()),
            WorkloadChoice::Replay { mode, .. } => match mode {
                ReplayMode::Loop => "replay_loop".to_string(),
                ReplayMode::Truncate => "replay_truncate".to_string(),
            },
            WorkloadChoice::Burst { mix, .. } => format!("burst_{}", mix.name()),
        }
    }

    /// Bakes the choice into a source for replica `replica` of a fleet.
    ///
    /// `seed` feeds synthetic randomness (callers split it per replica via
    /// [`selfheal_sim::seeds::split_seed`]); the replica index drives the
    /// deterministic phase shift of replayed traces.  Replica outcomes are
    /// therefore a pure function of `(seed, replica)` — the fleet
    /// determinism tests rely on this.
    pub fn source_for_replica(&self, seed: u64, replica: u64) -> Box<dyn TraceSource> {
        match self {
            WorkloadChoice::Synthetic { mix, arrivals } => {
                Box::new(TraceGenerator::new(mix.clone(), arrivals.clone(), seed))
            }
            WorkloadChoice::Replay {
                trace,
                mode,
                phase_step,
            } => Box::new(
                ReplaySource::shared(Arc::clone(trace), *mode).with_phase(replica * phase_step),
            ),
            WorkloadChoice::Burst {
                mix,
                base_rate,
                burst_factor,
                period_ticks,
                burst_ticks,
                phase_step,
            } => Box::new(
                BurstSource::new(
                    mix.clone(),
                    *base_rate,
                    *burst_factor,
                    *period_ticks,
                    *burst_ticks,
                    seed,
                )
                .with_phase(replica * phase_step),
            ),
        }
    }

    /// Bakes the choice into a single (replica-0) source.
    pub fn build_source(&self, seed: u64) -> Box<dyn TraceSource> {
        self.source_for_replica(seed, 0)
    }
}

/// The workload a [`SelfHealingService`] builder carries: either a
/// declarative [`WorkloadChoice`] (instantiated with the builder's seed at
/// run time) or a caller-supplied custom source used as-is.
#[derive(Debug)]
enum WorkloadSpec {
    Choice(WorkloadChoice),
    Custom(Box<dyn TraceSource>),
}

/// Builder/runner bundling service, workload, faults, policy, and the
/// learner store recipe.
#[derive(Debug)]
pub struct SelfHealingService {
    config: ServiceConfig,
    workload: WorkloadSpec,
    faults: FaultChoice,
    policy: PolicyChoice,
    learner: LearnerChoice,
    warm_start: Option<SynopsisSnapshot>,
    seed: u64,
}

impl SelfHealingService {
    /// Starts a builder with the RUBiS-like default configuration, the
    /// default workload ([`WorkloadChoice::default`]: bidding mix at
    /// Poisson 40 requests/tick), no faults, no healing, and private
    /// (per-instance) learning.
    pub fn builder() -> Self {
        SelfHealingService {
            config: ServiceConfig::rubis_default(),
            workload: WorkloadSpec::Choice(WorkloadChoice::default()),
            faults: FaultChoice::default(),
            policy: PolicyChoice::None,
            learner: LearnerChoice::Private,
            warm_start: None,
            seed: 42,
        }
    }

    /// Overrides the service configuration.
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Drives the service with a custom [`TraceSource`] (a recorded replay,
    /// a burst storm, or any caller-defined implementation).  The source is
    /// used exactly as given; the builder's seed does not touch it.
    pub fn workload(mut self, source: impl TraceSource + 'static) -> Self {
        self.workload = WorkloadSpec::Custom(Box::new(source));
        self
    }

    /// Drives the service with a declarative [`WorkloadChoice`], which is
    /// instantiated with the builder's seed when the run starts.
    pub fn workload_choice(mut self, choice: WorkloadChoice) -> Self {
        self.workload = WorkloadSpec::Choice(choice);
        self
    }

    /// Synthetic-workload shorthand for
    /// [`workload_choice`](Self::workload_choice).
    pub fn synthetic_workload(self, mix: WorkloadMix, arrivals: ArrivalProcess) -> Self {
        self.workload_choice(WorkloadChoice::synthetic(mix, arrivals))
    }

    /// Sets the fault-injection plan (shorthand for
    /// [`faults`](Self::faults) with [`FaultChoice::Scripted`]).
    pub fn injections(self, plan: InjectionPlan) -> Self {
        self.faults(FaultChoice::Scripted(plan))
    }

    /// Drives the service with a declarative [`FaultChoice`], instantiated
    /// (with a fault-stream split of the builder's seed) when the run
    /// starts.
    pub fn faults(mut self, faults: FaultChoice) -> Self {
        self.faults = faults;
        self
    }

    /// Chooses the healing policy.
    pub fn policy(mut self, policy: PolicyChoice) -> Self {
        self.policy = policy;
        self
    }

    /// Chooses where learned synopsis state lives (ignored by policies with
    /// nothing to learn).
    pub fn learner(mut self, learner: LearnerChoice) -> Self {
        self.learner = learner;
        self
    }

    /// Warm-starts the learner from a saved snapshot: the store is restored
    /// from the snapshot's experience before the first tick, so previously
    /// healed failure signatures are fixed on the first attempt.
    pub fn warm_start(mut self, snapshot: SynopsisSnapshot) -> Self {
        self.warm_start = Some(snapshot);
        self
    }

    /// Sets the workload seed (ignored when a custom source was supplied
    /// via [`workload`](Self::workload)).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The chosen policy.
    pub fn policy_choice(&self) -> PolicyChoice {
        self.policy
    }

    /// Assembles the runner this builder describes without driving it —
    /// the fleet engine uses this to obtain resumable replicas it can step
    /// itself, with an optional externally owned synopsis store wired into
    /// the healer.
    ///
    /// When `store` is `None` and the policy learns, the builder's
    /// [`LearnerChoice`] constructs the store (restored from the
    /// [`warm_start`](Self::warm_start) snapshot, if any).  An external
    /// `store` handle wins over both — the fleet engine passes per-replica
    /// handles of its fleet-wide store through here.
    pub fn into_runner(
        self,
        store: Option<Box<dyn SynopsisStore>>,
    ) -> ScenarioRunner<Box<dyn Healer>> {
        let service = MultiTierService::new(self.config.clone());
        let schema = service.schema().clone();
        let targets = self.config.slo_targets();
        let workload = match self.workload {
            WorkloadSpec::Choice(choice) => choice.build_source(self.seed),
            WorkloadSpec::Custom(source) => source,
        };
        // The fault stream gets its own seed split so demographic fault
        // generation decorrelates from workload randomness.
        let faults = self
            .faults
            .build_source(split_seed(self.seed, 0, SeedStream::Faults));
        let healer = match (self.policy.shares_learning(), store) {
            (true, Some(store)) => self.policy.build_healer_stored(&schema, targets, store),
            (true, None) => {
                let kind = self.policy.synopsis_kind().expect("learning policy kind");
                let store = self
                    .learner
                    .build_store_warm(kind, self.warm_start.as_ref());
                self.policy.build_healer_stored(&schema, targets, store)
            }
            (false, _) => self.policy.build_healer(&schema, targets),
        };
        ScenarioRunner::with_faults(service, workload, faults, healer)
    }

    /// Runs the scenario for `ticks` ticks.
    pub fn run(self, ticks: u64) -> ScenarioOutcome {
        let (outcome, _) = self.into_runner(None).run(ticks);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::{FaultKind, FaultTarget, InjectionPlanBuilder};

    #[test]
    fn builder_defaults_run_cleanly() {
        let outcome = SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .run(60);
        assert_eq!(outcome.ticks, 60);
        assert_eq!(outcome.violation_fraction, 0.0);
    }

    #[test]
    fn hybrid_policy_beats_no_healing_on_an_injected_fault() {
        let config = ServiceConfig::tiny();
        let plan = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
            .inject(
                40,
                FaultKind::BufferContention,
                FaultTarget::DatabaseTier,
                0.9,
            )
            .build();

        let unhealed = SelfHealingService::builder()
            .config(config.clone())
            .injections(plan.clone())
            .policy(PolicyChoice::None)
            .run(300);
        let healed = SelfHealingService::builder()
            .config(config)
            .injections(plan)
            .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
            .run(300);

        assert!(
            healed.violation_fraction < unhealed.violation_fraction,
            "healed {} vs unhealed {}",
            healed.violation_fraction,
            unhealed.violation_fraction
        );
        assert!(healed.fixes_initiated >= 1);
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<String> = [
            PolicyChoice::None,
            PolicyChoice::ManualRules,
            PolicyChoice::AnomalyDetection,
            PolicyChoice::CorrelationAnalysis,
            PolicyChoice::BottleneckAnalysis,
            PolicyChoice::FixSym(SynopsisKind::NearestNeighbor),
            PolicyChoice::Hybrid(SynopsisKind::AdaBoost(60)),
            PolicyChoice::Proactive,
        ]
        .iter()
        .map(PolicyChoice::label)
        .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn workload_choices_build_matching_sources() {
        let synthetic = WorkloadChoice::default();
        assert_eq!(synthetic.label(), "synthetic_bidding");
        let mut a = synthetic.build_source(9);
        let mut b = synthetic.build_source(9);
        assert_eq!(a.next_tick(0), b.next_tick(0));

        let mut generator = TraceGenerator::new(
            WorkloadMix::browsing(),
            ArrivalProcess::Constant { rate: 6.0 },
            1,
        );
        let trace = RecordedTrace::capture(&mut generator, 10);
        let replay = WorkloadChoice::replay(trace, ReplayMode::Loop, 4);
        assert_eq!(replay.label(), "replay_loop");
        // Replica 2 starts 8 ticks in: same kinds as the recorded tick 8.
        let mut shifted = replay.source_for_replica(0, 2);
        let expected = ReplaySource::shared(
            match &replay {
                WorkloadChoice::Replay { trace, .. } => Arc::clone(trace),
                _ => unreachable!(),
            },
            ReplayMode::Loop,
        )
        .with_phase(8)
        .next_tick(0);
        assert_eq!(shifted.next_tick(0), expected);

        let burst = WorkloadChoice::burst(WorkloadMix::bidding(), 10.0, 4.0, 60, 12);
        assert_eq!(burst.label(), "burst_bidding");
        assert!(burst.build_source(3).next_tick(0).len() > 10);

        // Staggered storms: replica 1 of a phase_step-30 burst fleet starts
        // its schedule 30 ticks in (outside the 12-tick storm window), so
        // its tick 0 sees baseline traffic while replica 0 is in a storm.
        let staggered =
            WorkloadChoice::burst_staggered(WorkloadMix::bidding(), 10.0, 4.0, 60, 12, 30);
        let calm = staggered.source_for_replica(3, 1).next_tick(0).len();
        assert!(calm < 25, "staggered replica 1 starts calm, got {calm}");
    }

    #[test]
    fn fault_choice_labels_are_distinct_and_descriptive() {
        let labels: Vec<String> = [
            FaultChoice::default(),
            FaultChoice::scripted(
                InjectionPlanBuilder::new(4, 3, 1)
                    .inject_default(10, FaultKind::BufferContention)
                    .build(),
            ),
            FaultChoice::mix(selfheal_faults::ServiceProfile::Online, 0.02),
            FaultChoice::sweep(50, 100),
            FaultChoice::composed([
                FaultChoice::sweep(50, 100),
                FaultChoice::mix(selfheal_faults::ServiceProfile::Content, 0.01),
            ]),
        ]
        .iter()
        .map(FaultChoice::label)
        .collect();
        assert_eq!(labels[0], "none");
        assert_eq!(labels[1], "scripted");
        assert!(labels[2].starts_with("mix_online"));
        assert_eq!(labels[3], "sweep");
        assert_eq!(labels[4], "composed_2");
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn fault_choices_build_deterministic_decorrelated_sources() {
        use selfheal_faults::{FaultSource as _, ServiceProfile};

        let choice = FaultChoice::mix(ServiceProfile::Online, 0.5).active_for(64);
        let drain = |mut source: Box<dyn selfheal_faults::FaultSource>| -> Vec<_> {
            (0..64).flat_map(|t| source.due_at(t)).collect()
        };
        // Same (seed, replica) → same stream; different seeds → different.
        assert_eq!(
            drain(choice.source_for_replica(7, 0)),
            drain(choice.source_for_replica(7, 0))
        );
        assert_ne!(
            drain(choice.source_for_replica(7, 0)),
            drain(choice.source_for_replica(8, 1))
        );

        // Composed children get decorrelated seeds and disjoint id lanes.
        let composed = FaultChoice::composed([
            FaultChoice::mix(ServiceProfile::Online, 1.0),
            FaultChoice::mix(ServiceProfile::Online, 1.0),
        ]);
        let faults = drain(composed.source_for_replica(7, 0).clone_box());
        assert_eq!(faults.len(), 128, "both children fire every tick");
        let mut ids: Vec<u64> = faults.iter().map(|f| f.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 128, "id lanes never collide");

        // Nested compositions keep lanes disjoint too: a grandchild must
        // never share an id base with a direct sibling leaf.
        let nested = FaultChoice::composed([
            FaultChoice::composed([
                FaultChoice::mix(ServiceProfile::Online, 1.0),
                FaultChoice::mix(ServiceProfile::Online, 1.0),
            ]),
            FaultChoice::mix(ServiceProfile::Online, 1.0),
        ]);
        let faults = drain(nested.source_for_replica(7, 0).clone_box());
        assert_eq!(faults.len(), 192, "all three leaves fire every tick");
        let mut ids: Vec<u64> = faults.iter().map(|f| f.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 192, "nested id lanes never collide");

        // active_for reaches through compositions.
        let bounded = composed.active_for(10);
        assert_eq!(bounded.build_source(7).horizon(), 9);

        // Sweeps ignore the seed entirely.
        let sweep = FaultChoice::sweep(5, 3);
        assert_eq!(
            drain(sweep.source_for_replica(1, 0)),
            drain(sweep.source_for_replica(99, 3))
        );
    }

    #[test]
    fn custom_sources_drive_the_builder() {
        let mut generator = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 30.0 },
            5,
        );
        let trace = RecordedTrace::capture(&mut generator, 80);
        let outcome = SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .workload(ReplaySource::new(trace, ReplayMode::Truncate))
            .run(80);
        assert_eq!(outcome.arrived, 80 * 30);
    }
}
