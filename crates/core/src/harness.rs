//! Convenience wrapper bundling a simulated service with a healing policy.
//!
//! Examples and benchmarks repeatedly need the same assembly: build a
//! RUBiS-like service, pick a workload, schedule fault injections, choose a
//! healing policy, run, and summarize.  [`SelfHealingService`] packages that
//! assembly behind a small builder so the examples read like the experiment
//! descriptions in the paper.

use crate::fixsym::FixSymHealer;
use crate::hybrid::HybridHealer;
use crate::policy::DiagnosisHealer;
use crate::proactive::ProactiveHealer;
use crate::synopsis::SynopsisKind;
use selfheal_faults::InjectionPlan;
use selfheal_sim::scenario::{Healer, NoHealing, ScenarioOutcome, ScenarioRunner};
use selfheal_sim::{MultiTierService, ServiceConfig};
use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

/// Which healing policy drives the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// No self-healing (baseline).
    None,
    /// The manual rule base.
    ManualRules,
    /// Anomaly-detection diagnosis.
    AnomalyDetection,
    /// Correlation-analysis diagnosis.
    CorrelationAnalysis,
    /// Bottleneck-analysis diagnosis.
    BottleneckAnalysis,
    /// Signature-based FixSym with the given synopsis.
    FixSym(SynopsisKind),
    /// FixSym + diagnosis hybrid.
    Hybrid(SynopsisKind),
    /// Forecast-driven proactive healing.
    Proactive,
}

impl PolicyChoice {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            PolicyChoice::None => "no_healing".to_string(),
            PolicyChoice::ManualRules => "manual_rules".to_string(),
            PolicyChoice::AnomalyDetection => "anomaly_detection".to_string(),
            PolicyChoice::CorrelationAnalysis => "correlation_analysis".to_string(),
            PolicyChoice::BottleneckAnalysis => "bottleneck_analysis".to_string(),
            PolicyChoice::FixSym(kind) => format!("fixsym_{}", kind.label()),
            PolicyChoice::Hybrid(kind) => format!("hybrid_{}", kind.label()),
            PolicyChoice::Proactive => "proactive".to_string(),
        }
    }
}

/// Builder/runner bundling service, workload, injections, and policy.
#[derive(Debug)]
pub struct SelfHealingService {
    config: ServiceConfig,
    mix: WorkloadMix,
    arrivals: ArrivalProcess,
    injections: InjectionPlan,
    policy: PolicyChoice,
    seed: u64,
}

impl SelfHealingService {
    /// Starts a builder with the RUBiS-like default configuration, the
    /// bidding mix at 40 requests/tick, no injections, and no healing.
    pub fn builder() -> Self {
        SelfHealingService {
            config: ServiceConfig::rubis_default(),
            mix: WorkloadMix::bidding(),
            arrivals: ArrivalProcess::Poisson { rate: 40.0 },
            injections: InjectionPlan::empty(),
            policy: PolicyChoice::None,
            seed: 42,
        }
    }

    /// Overrides the service configuration.
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the workload mix.
    pub fn workload(mut self, mix: WorkloadMix, arrivals: ArrivalProcess) -> Self {
        self.mix = mix;
        self.arrivals = arrivals;
        self
    }

    /// Sets the fault-injection plan.
    pub fn injections(mut self, plan: InjectionPlan) -> Self {
        self.injections = plan;
        self
    }

    /// Chooses the healing policy.
    pub fn policy(mut self, policy: PolicyChoice) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The chosen policy.
    pub fn policy_choice(&self) -> PolicyChoice {
        self.policy
    }

    /// Runs the scenario for `ticks` ticks.
    pub fn run(self, ticks: u64) -> ScenarioOutcome {
        let service = MultiTierService::new(self.config.clone());
        let schema = service.schema().clone();
        let workload = TraceGenerator::new(self.mix.clone(), self.arrivals.clone(), self.seed);
        let slo_rt = self.config.slo_response_ms;
        let slo_err = self.config.slo_error_rate;

        fn run_with<H: Healer>(
            service: MultiTierService,
            workload: TraceGenerator,
            injections: InjectionPlan,
            healer: H,
            ticks: u64,
        ) -> ScenarioOutcome {
            let (outcome, _) = ScenarioRunner::new(service, workload, injections, healer).run(ticks);
            outcome
        }

        match self.policy {
            PolicyChoice::None => {
                run_with(service, workload, self.injections, NoHealing, ticks)
            }
            PolicyChoice::ManualRules => {
                let healer = DiagnosisHealer::manual(&schema, slo_rt, slo_err);
                run_with(service, workload, self.injections, healer, ticks)
            }
            PolicyChoice::AnomalyDetection => {
                let healer = DiagnosisHealer::anomaly(&schema, slo_rt, slo_err);
                run_with(service, workload, self.injections, healer, ticks)
            }
            PolicyChoice::CorrelationAnalysis => {
                let healer = DiagnosisHealer::correlation(&schema, slo_rt, slo_err);
                run_with(service, workload, self.injections, healer, ticks)
            }
            PolicyChoice::BottleneckAnalysis => {
                let healer = DiagnosisHealer::bottleneck(&schema, slo_rt, slo_err);
                run_with(service, workload, self.injections, healer, ticks)
            }
            PolicyChoice::FixSym(kind) => {
                let healer = FixSymHealer::new(&schema, kind);
                run_with(service, workload, self.injections, healer, ticks)
            }
            PolicyChoice::Hybrid(kind) => {
                let healer = HybridHealer::new(&schema, kind, slo_rt, slo_err);
                run_with(service, workload, self.injections, healer, ticks)
            }
            PolicyChoice::Proactive => {
                let healer = ProactiveHealer::new(&schema, slo_rt, slo_err);
                run_with(service, workload, self.injections, healer, ticks)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::{FaultKind, FaultTarget, InjectionPlanBuilder};

    #[test]
    fn builder_defaults_run_cleanly() {
        let outcome = SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .run(60);
        assert_eq!(outcome.ticks, 60);
        assert_eq!(outcome.violation_fraction, 0.0);
    }

    #[test]
    fn hybrid_policy_beats_no_healing_on_an_injected_fault() {
        let config = ServiceConfig::tiny();
        let plan = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
            .inject(40, FaultKind::BufferContention, FaultTarget::DatabaseTier, 0.9)
            .build();

        let unhealed = SelfHealingService::builder()
            .config(config.clone())
            .injections(plan.clone())
            .policy(PolicyChoice::None)
            .run(300);
        let healed = SelfHealingService::builder()
            .config(config)
            .injections(plan)
            .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
            .run(300);

        assert!(
            healed.violation_fraction < unhealed.violation_fraction,
            "healed {} vs unhealed {}",
            healed.violation_fraction,
            unhealed.violation_fraction
        );
        assert!(healed.fixes_initiated >= 1);
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<String> = [
            PolicyChoice::None,
            PolicyChoice::ManualRules,
            PolicyChoice::AnomalyDetection,
            PolicyChoice::CorrelationAnalysis,
            PolicyChoice::BottleneckAnalysis,
            PolicyChoice::FixSym(SynopsisKind::NearestNeighbor),
            PolicyChoice::Hybrid(SynopsisKind::AdaBoost(60)),
            PolicyChoice::Proactive,
        ]
        .iter()
        .map(PolicyChoice::label)
        .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }
}
