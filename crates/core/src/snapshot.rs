//! Synopsis persistence: a JSON-lines codec for learned failure→fix models.
//!
//! The paper's synopses are cheap to generate (Table 3) precisely because
//! they are rebuilt from their training examples, so what a store persists
//! is not the fitted model but the *experience* behind it: every recorded
//! `(symptoms, fix, success)` outcome.  A [`SynopsisSnapshot`] is that
//! experience plus the kind of the model that recorded it, serialized one
//! outcome per line (mirroring the request-trace codec in
//! `selfheal_workload::codec`, and built on the same
//! [`selfheal_jsonl`] primitives):
//!
//! ```text
//! {"synopsis":"nearest_neighbor","examples":3}
//! {"symptoms":[8.0,1.0,1.0],"fix":"repartition_memory","success":true}
//! {"symptoms":[1.0,9.0,1.0],"fix":"microreboot_ejb","success":false}
//! ...
//! ```
//!
//! Because the snapshot holds raw examples rather than model weights, any
//! [`crate::store::SynopsisStore`] can restore from any snapshot — a fleet
//! configured for AdaBoost warm-starts from experience a nearest-neighbor
//! fleet saved.  Fixes are persisted by *label*, not numeric code, so saved
//! files survive enum reordering and stay human-readable.
//!
//! Two file shapes share the codec:
//!
//! * **Complete** snapshots (the [`SynopsisSnapshot::save`] /
//!   [`SynopsisSnapshot::to_jsonl`] path) declare their example count in
//!   the header, and [`SynopsisSnapshot::from_jsonl`] verifies it — a
//!   truncated file is rejected.
//! * **Incremental** logs ([`SnapshotLog`], what
//!   [`crate::store::SynopsisStore::persist_to`] writes) mark the header
//!   `"incremental":true` instead: stores *append* each drained batch of
//!   outcomes as it happens, so the file is valid — and restores everything
//!   appended so far — even if the process dies mid-run.  The loader reads
//!   incremental files to EOF with no count check.

use crate::synopsis::SynopsisKind;
use selfheal_faults::FixKind;
use selfheal_jsonl::{parse_lines, push_f64, JsonError, Scanner};
use std::io;
use std::path::{Path, PathBuf};

/// One recorded fix outcome: the failure signature, the fix attempted, and
/// whether it repaired the failure.
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisExample {
    /// The symptom vector of the failure data point.
    pub symptoms: Vec<f64>,
    /// The fix that was attempted.
    pub fix: FixKind,
    /// Whether the fix repaired the failure (successes become positive
    /// training examples; failures become negative knowledge).
    pub success: bool,
}

impl SynopsisExample {
    /// Creates an example.
    pub fn new(symptoms: Vec<f64>, fix: FixKind, success: bool) -> Self {
        SynopsisExample {
            symptoms,
            fix,
            success,
        }
    }
}

/// A persistable synopsis: the model kind plus every training outcome, in
/// the order they were recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisSnapshot {
    /// Kind of the synopsis that recorded the experience (advisory: a store
    /// restores the examples into its *own* kind).
    pub kind: SynopsisKind,
    /// Recorded outcomes, oldest first.
    pub examples: Vec<SynopsisExample>,
}

impl SynopsisSnapshot {
    /// Creates an empty snapshot for the given kind.
    pub fn new(kind: SynopsisKind) -> Self {
        SynopsisSnapshot {
            kind,
            examples: Vec::new(),
        }
    }

    /// Appends one outcome.
    pub fn push(&mut self, symptoms: Vec<f64>, fix: FixKind, success: bool) {
        self.examples
            .push(SynopsisExample::new(symptoms, fix, success));
    }

    /// Number of recorded outcomes.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the snapshot holds no outcomes.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Number of successful-fix outcomes.
    pub fn positives(&self) -> usize {
        self.examples.iter().filter(|e| e.success).count()
    }

    /// Number of failed-fix outcomes.
    pub fn negatives(&self) -> usize {
        self.examples.iter().filter(|e| !e.success).count()
    }

    /// Serializes the snapshot as a JSON-lines document (header line first,
    /// then one example per line; trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.examples.len() * 64);
        out.push_str("{\"synopsis\":\"");
        out.push_str(&self.kind.label());
        out.push_str("\",\"examples\":");
        out.push_str(&self.examples.len().to_string());
        out.push_str("}\n");
        for example in &self.examples {
            serialize_example(&mut out, example);
            out.push('\n');
        }
        out
    }

    /// Parses a JSON-lines document produced by
    /// [`SynopsisSnapshot::to_jsonl`] or appended by a [`SnapshotLog`]
    /// (blank lines are skipped).  Complete snapshots are verified against
    /// their declared example count; incremental logs are read to EOF.
    pub fn from_jsonl(text: &str) -> Result<SynopsisSnapshot, JsonError> {
        let lines = parse_lines(text, parse_line)?;
        let mut iter = lines.into_iter();
        let (kind, declared) = match iter.next() {
            Some(Line::Header { kind, examples }) => (kind, examples),
            Some(Line::Example(_)) | None => {
                return Err(JsonError::at(
                    0,
                    "synopsis file must start with a {\"synopsis\":...} header line",
                ))
            }
        };
        let mut examples = Vec::new();
        for line in iter {
            match line {
                Line::Example(example) => examples.push(example),
                Line::Header { .. } => {
                    return Err(JsonError::at(0, "duplicate synopsis header line"))
                }
            }
        }
        if let Some(declared) = declared {
            if examples.len() != declared {
                return Err(JsonError::at(
                    0,
                    format!(
                        "header declares {declared} examples but the file holds {}",
                        examples.len()
                    ),
                ));
            }
        }
        Ok(SynopsisSnapshot { kind, examples })
    }

    /// Writes the snapshot to a JSON-lines file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Reads a snapshot from a JSON-lines file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<SynopsisSnapshot> {
        let text = std::fs::read_to_string(path)?;
        SynopsisSnapshot::from_jsonl(&text)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))
    }
}

fn serialize_example(out: &mut String, example: &SynopsisExample) {
    out.push_str("{\"symptoms\":[");
    for (i, v) in example.symptoms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *v);
    }
    out.push_str("],\"fix\":\"");
    out.push_str(example.fix.label());
    out.push_str("\",\"success\":");
    out.push_str(if example.success { "true" } else { "false" });
    out.push('}');
}

/// The append-on-drain half of synopsis persistence: a JSON-lines file
/// whose header is marked incremental, to which stores append every batch
/// of drained `(symptoms, fix, success)` outcomes.
///
/// Created by [`crate::store::SynopsisStore::persist_to`]; loaded with the
/// ordinary [`SynopsisSnapshot::load`].  Because each append is a single
/// `O_APPEND` write of whole lines, the file restores everything appended
/// so far even when the writing process is killed mid-run.
#[derive(Debug)]
pub struct SnapshotLog {
    path: PathBuf,
}

impl SnapshotLog {
    /// Creates (truncating) the log file with an incremental header of
    /// `snapshot.kind` followed by the snapshot's current examples — the
    /// experience the store already holds when persistence starts.
    pub fn create(path: impl AsRef<Path>, snapshot: &SynopsisSnapshot) -> io::Result<SnapshotLog> {
        let mut text = String::with_capacity(64 + snapshot.examples.len() * 64);
        text.push_str("{\"synopsis\":\"");
        text.push_str(&snapshot.kind.label());
        text.push_str("\",\"incremental\":true}\n");
        for example in &snapshot.examples {
            serialize_example(&mut text, example);
            text.push('\n');
        }
        std::fs::write(&path, text)?;
        Ok(SnapshotLog {
            path: path.as_ref().to_path_buf(),
        })
    }

    /// Appends one batch of outcomes as whole lines in a single write.
    pub fn append<'a>(
        &self,
        examples: impl IntoIterator<Item = &'a SynopsisExample>,
    ) -> io::Result<()> {
        use std::io::Write as _;
        let mut text = String::new();
        for example in examples {
            serialize_example(&mut text, example);
            text.push('\n');
        }
        if text.is_empty() {
            return Ok(());
        }
        let mut file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        file.write_all(text.as_bytes())
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

enum Line {
    Header {
        kind: SynopsisKind,
        /// `Some(count)` for complete snapshots (verified), `None` for
        /// incremental logs (read to EOF).
        examples: Option<usize>,
    },
    Example(SynopsisExample),
}

fn parse_line(line: &str) -> Result<Line, JsonError> {
    let mut s = Scanner::new(line);
    s.expect(b'{')?;
    let mut kind: Option<SynopsisKind> = None;
    let mut declared: Option<usize> = None;
    let mut incremental = false;
    let mut symptoms: Option<Vec<f64>> = None;
    let mut fix: Option<FixKind> = None;
    let mut success: Option<bool> = None;
    let mut is_header = false;
    loop {
        let key_at = {
            s.skip_ws();
            s.pos()
        };
        let key = s.parse_string()?;
        s.expect(b':')?;
        match key.as_ref() {
            "synopsis" => {
                is_header = true;
                let label_at = {
                    s.skip_ws();
                    s.pos()
                };
                let label = s.parse_string()?;
                kind = Some(SynopsisKind::from_label(&label).ok_or_else(|| {
                    JsonError::at(label_at, format!("unknown synopsis kind \"{label}\""))
                })?);
            }
            "examples" => {
                is_header = true;
                declared = Some(s.parse_u64()? as usize);
            }
            "incremental" => {
                is_header = true;
                incremental = s.parse_bool()?;
            }
            "symptoms" => symptoms = Some(parse_symptoms(&mut s)?),
            "fix" => {
                let label_at = {
                    s.skip_ws();
                    s.pos()
                };
                let label = s.parse_string()?;
                fix = Some(FixKind::from_label(&label).ok_or_else(|| {
                    JsonError::at(label_at, format!("unknown fix kind \"{label}\""))
                })?);
            }
            "success" => success = Some(s.parse_bool()?),
            other => {
                return Err(JsonError::at(
                    key_at,
                    format!("unknown synopsis field \"{other}\""),
                ))
            }
        }
        s.skip_ws();
        match s.peek() {
            Some(b',') => s.bump(),
            Some(b'}') => {
                s.bump();
                break;
            }
            _ => return Err(JsonError::at(s.pos(), "expected ',' or '}'")),
        }
    }
    s.finish()?;
    if is_header {
        let kind = kind.ok_or_else(|| JsonError::at(0, "header is missing \"synopsis\""))?;
        let examples = if incremental {
            None
        } else {
            Some(declared.ok_or_else(|| JsonError::at(0, "header is missing \"examples\""))?)
        };
        return Ok(Line::Header { kind, examples });
    }
    match (symptoms, fix, success) {
        (Some(symptoms), Some(fix), Some(success)) => {
            Ok(Line::Example(SynopsisExample::new(symptoms, fix, success)))
        }
        (None, ..) => Err(JsonError::at(0, "example is missing \"symptoms\"")),
        (_, None, _) => Err(JsonError::at(0, "example is missing \"fix\"")),
        (.., None) => Err(JsonError::at(0, "example is missing \"success\"")),
    }
}

fn parse_symptoms(s: &mut Scanner<'_>) -> Result<Vec<f64>, JsonError> {
    s.expect(b'[')?;
    let mut values = Vec::new();
    s.skip_ws();
    if s.peek() == Some(b']') {
        s.bump();
        return Ok(values);
    }
    loop {
        values.push(s.parse_f64()?);
        s.skip_ws();
        match s.peek() {
            Some(b',') => s.bump(),
            Some(b']') => {
                s.bump();
                return Ok(values);
            }
            _ => {
                return Err(JsonError::at(
                    s.pos(),
                    "expected ',' or ']' in symptom array",
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> SynopsisSnapshot {
        let mut snap = SynopsisSnapshot::new(SynopsisKind::NearestNeighbor);
        snap.push(vec![8.0, 1.0, 1.0], FixKind::RepartitionMemory, true);
        snap.push(vec![1.0, 9.5, -0.25], FixKind::MicrorebootEjb, false);
        snap.push(vec![1e-9, 1.0, 7.0], FixKind::UpdateStatistics, true);
        snap
    }

    #[test]
    fn serialize_then_parse_is_identity() {
        let original = snapshot();
        let parsed = SynopsisSnapshot::from_jsonl(&original.to_jsonl()).expect("round trip");
        assert_eq!(parsed, original);
        assert_eq!(parsed.positives(), 2);
        assert_eq!(parsed.negatives(), 1);
    }

    #[test]
    fn empty_snapshots_round_trip() {
        let empty = SynopsisSnapshot::new(SynopsisKind::AdaBoost(60));
        let text = empty.to_jsonl();
        assert_eq!(text, "{\"synopsis\":\"adaboost_60\",\"examples\":0}\n");
        let parsed = SynopsisSnapshot::from_jsonl(&text).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(parsed.kind, SynopsisKind::AdaBoost(60));
    }

    #[test]
    fn header_errors_are_caught() {
        let missing = "{\"symptoms\":[1.0],\"fix\":\"no_op\",\"success\":true}\n";
        assert!(SynopsisSnapshot::from_jsonl(missing)
            .unwrap_err()
            .message
            .contains("header"));

        let wrong_count = "{\"synopsis\":\"k_means\",\"examples\":5}\n";
        assert!(SynopsisSnapshot::from_jsonl(wrong_count)
            .unwrap_err()
            .message
            .contains("declares 5 examples"));

        let duplicate = "{\"synopsis\":\"k_means\",\"examples\":0}\n\
                         {\"synopsis\":\"k_means\",\"examples\":0}\n";
        assert!(SynopsisSnapshot::from_jsonl(duplicate)
            .unwrap_err()
            .message
            .contains("duplicate"));
    }

    #[test]
    fn unknown_labels_are_rejected_with_line_numbers() {
        let bad_fix = "{\"synopsis\":\"k_means\",\"examples\":1}\n\
                       {\"symptoms\":[1.0],\"fix\":\"percussive_maintenance\",\"success\":true}\n";
        let err = SynopsisSnapshot::from_jsonl(bad_fix).unwrap_err();
        assert!(err.message.contains("unknown fix kind"));
        assert_eq!(err.line, 2);

        let bad_kind = "{\"synopsis\":\"oracle\",\"examples\":0}\n";
        assert!(SynopsisSnapshot::from_jsonl(bad_kind)
            .unwrap_err()
            .message
            .contains("unknown synopsis kind"));
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join("selfheal_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synopsis.jsonl");
        let original = snapshot();
        original.save(&path).unwrap();
        let loaded = SynopsisSnapshot::load(&path).unwrap();
        assert_eq!(loaded, original);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_logs_append_and_load_without_a_count() {
        let dir = std::env::temp_dir().join("selfheal_snapshot_log_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incremental.jsonl");

        let log = SnapshotLog::create(&path, &snapshot()).unwrap();
        assert_eq!(log.path(), path.as_path());
        // A freshly created log restores the seeding experience.
        assert_eq!(SynopsisSnapshot::load(&path).unwrap().len(), 3);

        let more = [
            SynopsisExample::new(vec![2.0, 2.0], FixKind::RebootTier, true),
            SynopsisExample::new(vec![3.0, 3.0], FixKind::KillHungQuery, false),
        ];
        log.append(more.iter()).unwrap();
        log.append(std::iter::empty()).unwrap(); // empty appends are no-ops
        let loaded = SynopsisSnapshot::load(&path).unwrap();
        assert_eq!(loaded.len(), 5, "everything appended so far restores");
        assert_eq!(loaded.examples[3..], more[..]);
        assert_eq!(loaded.kind, SynopsisKind::NearestNeighbor);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_headers_skip_the_count_check() {
        let text = "{\"synopsis\":\"k_means\",\"incremental\":true}\n\
                    {\"symptoms\":[1.0],\"fix\":\"reboot_tier\",\"success\":true}\n";
        let parsed = SynopsisSnapshot::from_jsonl(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.kind, SynopsisKind::KMeans);
        // Complete headers still verify their count.
        let complete = "{\"synopsis\":\"k_means\",\"examples\":2}\n\
                        {\"symptoms\":[1.0],\"fix\":\"reboot_tier\",\"success\":true}\n";
        assert!(SynopsisSnapshot::from_jsonl(complete)
            .unwrap_err()
            .message
            .contains("declares 2 examples"));
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in [
            SynopsisKind::NearestNeighbor,
            SynopsisKind::KMeans,
            SynopsisKind::AdaBoost(60),
            SynopsisKind::AdaBoost(7),
        ] {
            assert_eq!(SynopsisKind::from_label(&kind.label()), Some(kind));
        }
        assert_eq!(SynopsisKind::from_label("adaboost_x"), None);
    }
}
