//! Back-compatibility home of the fleet-shared synopsis.
//!
//! The learning layer was redesigned around the pluggable
//! [`crate::store::SynopsisStore`] trait; the concurrency cut that used to
//! live here as `SharedSynopsis` is now [`crate::store::LockedStore`] (one
//! fleet-wide synopsis behind one lock), alongside its siblings
//! [`crate::store::PrivateStore`] and [`crate::store::ShardedStore`].  This
//! module keeps the old name importable.

pub use crate::store::LockedStore;

/// The pre-`SynopsisStore` name of [`LockedStore`].
pub type SharedSynopsis = LockedStore;
