//! Fleet-shared fix-signature synopses.
//!
//! Table 3 of the paper shows that signature synopses are cheap to generate
//! and query — cheap enough that one synopsis can serve *many* service
//! instances.  That is the paper's scaling argument: when replica A has
//! healed a failure once, replicas B..N facing the same signature should fix
//! it on the first attempt instead of re-running trial-and-error.
//!
//! [`SharedSynopsis`] is the concurrency cut of [`Synopsis`] that makes this
//! work for the fleet engine:
//!
//! * **Reads** ([`SharedSynopsis::suggest`] /
//!   [`SharedSynopsis::suggest_excluding`]) take a shared read lock on the
//!   fitted model — replicas query concurrently.
//! * **Writes** ([`SharedSynopsis::record`]) append to a cheap pending queue.
//!   Only when the queue reaches the batch threshold does one replica
//!   opportunistically (`try_write`, never blocking on a retrain already in
//!   progress) drain the queue into the model with a *single* combined
//!   refit.  A replica therefore never stalls because another replica's
//!   update triggered a retrain.
//!
//! The handle is `Clone`; clones share state.  Batching trades staleness for
//! throughput: a freshly learned fix becomes visible to other replicas after
//! at most `batch - 1` further updates (or a [`SharedSynopsis::flush`]).

use crate::synopsis::{Learner, Synopsis, SynopsisKind};
use selfheal_faults::FixKind;
use std::collections::HashSet;
use std::sync::{Arc, Mutex, RwLock};

/// One queued `(symptoms, fix, success)` outcome awaiting the next drain.
type PendingUpdate = (Vec<f64>, FixKind, bool);

#[derive(Debug)]
struct SharedState {
    model: RwLock<Synopsis>,
    pending: Mutex<Vec<PendingUpdate>>,
    batch: usize,
    drains: Mutex<u64>,
}

/// A cloneable, thread-safe handle to one fleet-wide [`Synopsis`].
#[derive(Debug, Clone)]
pub struct SharedSynopsis {
    state: Arc<SharedState>,
}

impl SharedSynopsis {
    /// Default number of queued updates that triggers a drain + refit.
    pub const DEFAULT_BATCH: usize = 4;

    /// Creates a shared synopsis of the given kind with the default batch
    /// threshold.
    pub fn new(kind: SynopsisKind) -> Self {
        Self::with_batch(kind, Self::DEFAULT_BATCH)
    }

    /// Creates a shared synopsis that drains after `batch` queued updates
    /// (`1` = drain on every update, i.e. no added staleness).
    pub fn with_batch(kind: SynopsisKind, batch: usize) -> Self {
        SharedSynopsis {
            state: Arc::new(SharedState {
                model: RwLock::new(Synopsis::new(kind)),
                pending: Mutex::new(Vec::new()),
                batch: batch.max(1),
                drains: Mutex::new(0),
            }),
        }
    }

    /// The configured synopsis kind.
    pub fn kind(&self) -> SynopsisKind {
        self.read().kind()
    }

    /// Number of successful-fix examples folded into the model so far
    /// (inherent mirror of [`Learner::correct_fixes_learned`], so handle
    /// users don't need the trait in scope).
    pub fn correct_fixes_learned(&self) -> usize {
        self.read().correct_fixes_learned()
    }

    /// Number of updates currently queued and not yet folded into the model.
    pub fn pending_updates(&self) -> usize {
        self.state
            .pending
            .lock()
            .expect("pending queue poisoned")
            .len()
    }

    /// How many batched drains have run so far.
    pub fn drains(&self) -> u64 {
        *self.state.drains.lock().expect("drain counter poisoned")
    }

    /// Runs `f` against the fitted model under the read lock.
    ///
    /// Exposed so callers can take consistent multi-field snapshots (e.g.
    /// training cost plus accuracy) without cloning the synopsis.
    pub fn with_model<T>(&self, f: impl FnOnce(&Synopsis) -> T) -> T {
        f(&self.read())
    }

    /// Blockingly drains every queued update into the model.  Call once the
    /// fleet quiesces, before reading training statistics.
    pub fn flush(&self) {
        let updates = {
            let mut pending = self.state.pending.lock().expect("pending queue poisoned");
            std::mem::take(&mut *pending)
        };
        if updates.is_empty() {
            return;
        }
        let mut model = self.state.model.write().expect("synopsis lock poisoned");
        model.absorb(updates);
        *self.state.drains.lock().expect("drain counter poisoned") += 1;
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Synopsis> {
        self.state.model.read().expect("synopsis lock poisoned")
    }

    /// Opportunistic drain: skips (leaving the queue for a later caller)
    /// when another replica holds the model lock.
    fn try_drain(&self) {
        let Ok(mut model) = self.state.model.try_write() else {
            return;
        };
        let updates = {
            let mut pending = self.state.pending.lock().expect("pending queue poisoned");
            std::mem::take(&mut *pending)
        };
        if updates.is_empty() {
            return;
        }
        model.absorb(updates);
        *self.state.drains.lock().expect("drain counter poisoned") += 1;
    }
}

impl Learner for SharedSynopsis {
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        self.read().suggest(symptoms)
    }

    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        self.read().suggest_excluding(symptoms, excluded)
    }

    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        let due = {
            let mut pending = self.state.pending.lock().expect("pending queue poisoned");
            pending.push((symptoms.to_vec(), fix, success));
            pending.len() >= self.state.batch
        };
        if due {
            self.try_drain();
        }
    }

    fn correct_fixes_learned(&self) -> usize {
        self.read().correct_fixes_learned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn symptom(kind: usize) -> Vec<f64> {
        match kind {
            0 => vec![8.0, 1.0, 1.0],
            1 => vec![1.0, 9.0, 1.0],
            _ => vec![1.0, 1.0, 7.0],
        }
    }

    #[test]
    fn updates_are_batched_until_the_threshold() {
        let mut shared = SharedSynopsis::with_batch(SynopsisKind::NearestNeighbor, 3);
        shared.record(&symptom(0), FixKind::RepartitionMemory, true);
        shared.record(&symptom(1), FixKind::MicrorebootEjb, true);
        assert_eq!(shared.pending_updates(), 2);
        assert_eq!(shared.correct_fixes_learned(), 0, "not yet drained");
        assert!(shared.suggest(&symptom(0)).is_none());

        shared.record(&symptom(2), FixKind::UpdateStatistics, true);
        assert_eq!(shared.pending_updates(), 0);
        assert_eq!(shared.correct_fixes_learned(), 3);
        assert_eq!(shared.drains(), 1);
        assert_eq!(
            shared.suggest(&symptom(0)).unwrap().0,
            FixKind::RepartitionMemory
        );
        assert_eq!(
            shared.with_model(|m| m.retrains()),
            1,
            "one refit for the whole batch"
        );
    }

    #[test]
    fn flush_publishes_a_partial_batch() {
        let mut shared = SharedSynopsis::with_batch(SynopsisKind::NearestNeighbor, 64);
        shared.record(&symptom(0), FixKind::RepartitionMemory, true);
        assert!(shared.suggest(&symptom(0)).is_none());
        shared.flush();
        assert_eq!(
            shared.suggest(&symptom(0)).unwrap().0,
            FixKind::RepartitionMemory
        );
        // A second flush with an empty queue is a no-op.
        shared.flush();
        assert_eq!(shared.drains(), 1);
    }

    #[test]
    fn clones_share_learned_state() {
        let mut a = SharedSynopsis::with_batch(SynopsisKind::NearestNeighbor, 1);
        let b = a.clone();
        a.record(&symptom(1), FixKind::MicrorebootEjb, true);
        assert_eq!(b.correct_fixes_learned(), 1);
        assert_eq!(b.suggest(&symptom(1)).unwrap().0, FixKind::MicrorebootEjb);
    }

    #[test]
    fn failed_fixes_never_become_positives() {
        let mut shared = SharedSynopsis::with_batch(SynopsisKind::NearestNeighbor, 1);
        shared.record(&symptom(0), FixKind::KillHungQuery, false);
        shared.flush();
        assert_eq!(shared.correct_fixes_learned(), 0);
        assert_eq!(shared.with_model(|m| m.failed_fixes_recorded()), 1);
    }

    #[test]
    fn concurrent_recorders_lose_no_updates() {
        let shared = SharedSynopsis::with_batch(SynopsisKind::NearestNeighbor, 5);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let mut handle = shared.clone();
                thread::spawn(move || {
                    for i in 0..25 {
                        let fixes = [
                            FixKind::RepartitionMemory,
                            FixKind::MicrorebootEjb,
                            FixKind::UpdateStatistics,
                        ];
                        let class = (t + i) % 3;
                        handle.record(&symptom(class), fixes[class], true);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread panicked");
        }
        shared.flush();
        assert_eq!(shared.correct_fixes_learned(), 100);
        assert!(shared.drains() >= 1);
        assert_eq!(
            shared.suggest(&symptom(0)).unwrap().0,
            FixKind::RepartitionMemory
        );
    }
}
