//! Pluggable synopsis stores: where a fleet's learned failure→fix model
//! lives, how it is shared, and how it survives the process.
//!
//! The paper's scaling argument (Table 3: synopses are cheap to build and
//! query) says one synopsis can serve *many* service instances.  The
//! [`SynopsisStore`] trait is the seam that makes the topology of that
//! sharing a configuration choice instead of a code path:
//!
//! * [`PrivateStore`] — one replica, one synopsis (the paper's
//!   single-instance setup).  Updates apply immediately.
//! * [`LockedStore`] — one fleet, one synopsis behind one `RwLock`, with
//!   batched update draining so replicas never stall on a sibling's
//!   retrain.  This is the store previously known as `SharedSynopsis`.
//! * [`ShardedStore`] — one fleet, `k` synopses, each owning a region of
//!   symptom space.  Like cyclic block coordinate descent partitions a
//!   solver's coordinates into disjoint blocks, the store partitions the
//!   symptom space with k-means centroids (`selfheal_learn::KMeans`) and
//!   routes every suggest/record to the shard owning that region — so
//!   concurrent replicas updating *different* failure modes contend on
//!   different locks.  With one shard it degenerates to exactly a
//!   [`LockedStore`] (asserted fingerprint-identical in `tests/stores.rs`).
//!
//! Every store can [`snapshot`](SynopsisStore::snapshot) its experience to a
//! [`SynopsisSnapshot`] and [`restore`](SynopsisStore::restore) from one —
//! combined with the JSON-lines codec in [`crate::snapshot`], fleets
//! warm-start across process boundaries.
//!
//! Healing policies stay written against the [`Learner`] trait; every store
//! implements it (as does `Box<dyn SynopsisStore>`), so
//! [`crate::FixSymHealer`] and [`crate::HybridHealer`] are oblivious to
//! which store backs them.

use crate::snapshot::{SnapshotLog, SynopsisExample, SynopsisSnapshot};
use crate::synopsis::{Learner, Synopsis, SynopsisKind};
use selfheal_faults::FixKind;
use selfheal_learn::{Classifier, Dataset, Example, KMeans};
use std::collections::HashSet;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// One queued `(symptoms, fix, success)` outcome awaiting the next drain.
type PendingUpdate = (Vec<f64>, FixKind, bool);

/// Appends a batch of drained updates to the store's incremental snapshot
/// log, when one is active (see [`SynopsisStore::persist_to`]).
///
/// # Panics
/// Panics when the append fails: silently dropping experience from a file
/// the operator asked for would defeat the point of persistence.
fn log_drained(log: &Mutex<Option<SnapshotLog>>, updates: &[PendingUpdate]) {
    let log = log.lock().expect("snapshot log poisoned");
    if let Some(log) = log.as_ref() {
        let examples: Vec<SynopsisExample> = updates
            .iter()
            .map(|(symptoms, fix, success)| SynopsisExample::new(symptoms.clone(), *fix, *success))
            .collect();
        log.append(examples.iter())
            .expect("appending drained outcomes to the synopsis log failed");
    }
}

/// Recreates an active incremental log from a store's post-restore
/// experience (no-op when persistence is off).  The path is read and the
/// log replaced in separate critical sections so the snapshot — whose
/// flush may itself append to the log — never runs under the log lock.
///
/// # Panics
/// Panics when the recreation fails (see [`log_drained`]).
fn recreate_log(log: &Mutex<Option<SnapshotLog>>, snapshot: impl FnOnce() -> SynopsisSnapshot) {
    let path = {
        let guard = log.lock().expect("snapshot log poisoned");
        guard.as_ref().map(|l| l.path().to_path_buf())
    };
    if let Some(path) = path {
        let recreated = SnapshotLog::create(&path, &snapshot())
            .expect("recreating the synopsis log after restore failed");
        *log.lock().expect("snapshot log poisoned") = Some(recreated);
    }
}

/// Folds a pending queue into its model with one combined refit — the one
/// drain implementation behind [`LockedStore`] and every [`ShardedStore`]
/// shard.  `blocking` waits for the model lock; otherwise the drain gives up
/// (leaving the queue for a later caller) when a retrain is in progress.
/// Drained updates are appended to `log` when incremental persistence is
/// active.
fn drain_into(
    model: &RwLock<Synopsis>,
    pending: &Mutex<Vec<PendingUpdate>>,
    drains: &Mutex<u64>,
    log: &Mutex<Option<SnapshotLog>>,
    blocking: bool,
) {
    let mut model = if blocking {
        model.write().expect("synopsis lock poisoned")
    } else {
        match model.try_write() {
            Ok(model) => model,
            Err(_) => return,
        }
    };
    let updates = std::mem::take(&mut *pending.lock().expect("pending queue poisoned"));
    if updates.is_empty() {
        return;
    }
    log_drained(log, &updates);
    model.absorb(updates);
    *drains.lock().expect("drain counter poisoned") += 1;
}

/// A home for learned synopsis state, pluggable behind every healer.
///
/// `SynopsisStore` extends [`Learner`] (the suggest/record surface healers
/// use) with the lifecycle surface fleets and tools use: flushing batched
/// updates, persisting experience, and handing out per-replica handles.
pub trait SynopsisStore: Learner {
    /// The synopsis kind backing the store.
    fn kind(&self) -> SynopsisKind;

    /// Blockingly folds every queued update into the model(s).  Call once
    /// the fleet quiesces, before reading statistics or snapshotting.
    fn flush(&self);

    /// Number of recorded updates not yet folded into a model.
    fn pending_updates(&self) -> usize;

    /// Captures every recorded outcome so the store can be rebuilt
    /// elsewhere — the save half of warm-start.
    ///
    /// Implementations must [`flush`](Self::flush) internally before
    /// capturing: up to `batch - 1` updates can sit in a shared store's
    /// pending queue at any moment, and a snapshot that ignored them would
    /// silently drop experience from saved synopses
    /// (`tests/stores.rs::snapshots_flush_queued_updates_instead_of_dropping_them`
    /// pins this contract).
    fn snapshot(&self) -> SynopsisSnapshot;

    /// Replaces the store's learned state with the snapshot's experience,
    /// rebuilt under the store's *own* kind (snapshots carry raw examples,
    /// not fitted weights, so any store restores from any snapshot).
    fn restore(&mut self, snapshot: &SynopsisSnapshot);

    /// A handle for one more consumer of this store.  Shared stores
    /// ([`LockedStore`], [`ShardedStore`]) return a handle to the *same*
    /// state; [`PrivateStore`] returns an independent deep copy.
    fn clone_store(&self) -> Box<dyn SynopsisStore>;

    /// Switches the store to *incremental* persistence: creates (truncating)
    /// a [`SnapshotLog`] at `path` seeded with the store's current
    /// experience, then appends every subsequently drained batch of
    /// `(symptoms, fix, success)` outcomes as it happens — instead of one
    /// full-file snapshot write at quiesce.  A process killed mid-run
    /// therefore leaves a file that
    /// [`SynopsisSnapshot::load`] restores up to the last drain.
    ///
    /// Shared stores log through their shared state, so every
    /// [`clone_store`](Self::clone_store) handle feeds the same file;
    /// [`restore`](Self::restore) recreates the file from the restored
    /// experience.  [`PrivateStore`] applies updates immediately, so it
    /// appends on every record.
    fn persist_to(&mut self, path: &Path) -> io::Result<()>;

    /// Aggregates the store's entire experience into per-fix
    /// success/failure counts — the introspection surface live queries
    /// (e.g. the resident daemon's `QUERY FIXES`) read at epoch barriers.
    ///
    /// Flushes internally (via [`snapshot`](Self::snapshot)), so queued
    /// updates are counted.  Fixes with no recorded attempts are omitted;
    /// the rest appear in [`FixKind::ALL`] order.
    fn fix_stats(&self) -> Vec<FixStats> {
        let snapshot = self.snapshot();
        FixKind::ALL
            .iter()
            .filter_map(|&fix| {
                let mut stats = FixStats {
                    fix,
                    successes: 0,
                    failures: 0,
                };
                for example in snapshot.examples.iter().filter(|e| e.fix == fix) {
                    if example.success {
                        stats.successes += 1;
                    } else {
                        stats.failures += 1;
                    }
                }
                (stats.successes + stats.failures > 0).then_some(stats)
            })
            .collect()
    }
}

/// Aggregated learned experience for one [`FixKind`]: how often the fleet
/// tried it and how often it repaired the failure.  Produced by
/// [`SynopsisStore::fix_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixStats {
    /// The fix the counts describe.
    pub fix: FixKind,
    /// Applications recorded as having repaired the failure.
    pub successes: usize,
    /// Applications recorded as having failed to repair it.
    pub failures: usize,
}

impl FixStats {
    /// `successes / (successes + failures)`; `0.0` when nothing was
    /// recorded.
    pub fn success_rate(&self) -> f64 {
        let total = self.successes + self.failures;
        if total == 0 {
            0.0
        } else {
            self.successes as f64 / total as f64
        }
    }
}

impl Learner for Box<dyn SynopsisStore> {
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        (**self).suggest(symptoms)
    }

    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        (**self).suggest_excluding(symptoms, excluded)
    }

    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        (**self).record(symptoms, fix, success);
    }

    fn correct_fixes_learned(&self) -> usize {
        (**self).correct_fixes_learned()
    }
}

/// Rebuilds a synopsis of `kind` from a snapshot's raw experience: one
/// bootstrap refit over the successes, then the failures as negative
/// knowledge (failures never trigger refits).
fn synopsis_from_snapshot(kind: SynopsisKind, snapshot: &SynopsisSnapshot) -> Synopsis {
    let mut synopsis = Synopsis::new(kind);
    let positives: Vec<Example> = snapshot
        .examples
        .iter()
        .filter(|e| e.success)
        .map(|e| Example::new(e.symptoms.clone(), e.fix.code()))
        .collect();
    synopsis.bootstrap(&positives);
    for example in snapshot.examples.iter().filter(|e| !e.success) {
        synopsis.update(&example.symptoms, example.fix, false);
    }
    synopsis
}

/// Appends a synopsis's experience (successes first, then failures) to a
/// snapshot.
fn append_synopsis(snapshot: &mut SynopsisSnapshot, synopsis: &Synopsis) {
    for example in synopsis.positive_examples() {
        if let Some(fix) = FixKind::from_code(example.label) {
            snapshot.push(example.features.clone(), fix, true);
        }
    }
    for example in synopsis.negative_examples() {
        if let Some(fix) = FixKind::from_code(example.label) {
            snapshot.push(example.features.clone(), fix, false);
        }
    }
}

// ---------------------------------------------------------------------------
// PrivateStore
// ---------------------------------------------------------------------------

/// A privately owned synopsis: the paper's single-instance setup, wrapped in
/// the store API so a lone service and a fleet replica configure learning
/// the same way.  Updates apply (and refit) immediately; there is nothing to
/// flush.
#[derive(Debug)]
pub struct PrivateStore {
    synopsis: Synopsis,
    log: Option<SnapshotLog>,
}

impl PrivateStore {
    /// Creates an empty private store.
    pub fn new(kind: SynopsisKind) -> Self {
        PrivateStore {
            synopsis: Synopsis::new(kind),
            log: None,
        }
    }

    /// Creates a private store pre-loaded from a snapshot.
    pub fn from_snapshot(kind: SynopsisKind, snapshot: &SynopsisSnapshot) -> Self {
        PrivateStore {
            synopsis: synopsis_from_snapshot(kind, snapshot),
            log: None,
        }
    }

    /// The wrapped synopsis.
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }
}

impl Learner for PrivateStore {
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        self.synopsis.suggest(symptoms)
    }

    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        self.synopsis.suggest_excluding(symptoms, excluded)
    }

    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        self.synopsis.update(symptoms, fix, success);
        // A private store applies updates immediately, so every record *is*
        // a drain — append it to the log right away.
        if let Some(log) = &self.log {
            log.append(std::iter::once(&SynopsisExample::new(
                symptoms.to_vec(),
                fix,
                success,
            )))
            .expect("appending the recorded outcome to the synopsis log failed");
        }
    }

    fn correct_fixes_learned(&self) -> usize {
        self.synopsis.correct_fixes_learned()
    }
}

impl SynopsisStore for PrivateStore {
    fn kind(&self) -> SynopsisKind {
        self.synopsis.kind()
    }

    fn flush(&self) {}

    fn pending_updates(&self) -> usize {
        0
    }

    fn snapshot(&self) -> SynopsisSnapshot {
        let mut snapshot = SynopsisSnapshot::new(self.kind());
        append_synopsis(&mut snapshot, &self.synopsis);
        snapshot
    }

    fn restore(&mut self, snapshot: &SynopsisSnapshot) {
        self.synopsis = synopsis_from_snapshot(self.kind(), snapshot);
        if let Some(log) = &self.log {
            self.log = Some(
                SnapshotLog::create(log.path(), &SynopsisStore::snapshot(self))
                    .expect("recreating the synopsis log after restore failed"),
            );
        }
    }

    fn clone_store(&self) -> Box<dyn SynopsisStore> {
        // The deep copy does not inherit the log: two independent stores
        // appending to one file would interleave unrelated experience.
        Box::new(PrivateStore::from_snapshot(self.kind(), &self.snapshot()))
    }

    fn persist_to(&mut self, path: &Path) -> io::Result<()> {
        self.log = Some(SnapshotLog::create(path, &SynopsisStore::snapshot(self))?);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LockedStore
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct LockedState {
    model: RwLock<Synopsis>,
    pending: Mutex<Vec<PendingUpdate>>,
    batch: usize,
    drains: Mutex<u64>,
    log: Mutex<Option<SnapshotLog>>,
}

/// A cloneable, thread-safe handle to one fleet-wide [`Synopsis`] behind a
/// single lock (the store previously named `SharedSynopsis`):
///
/// * **Reads** ([`suggest`](Learner::suggest) /
///   [`suggest_excluding`](Learner::suggest_excluding)) take a shared read
///   lock on the fitted model — replicas query concurrently.
/// * **Writes** ([`record`](Learner::record)) append to a cheap pending
///   queue.  Only when the queue reaches the batch threshold does one
///   replica opportunistically (`try_write`, never blocking on a retrain
///   already in progress) drain the queue into the model with a *single*
///   combined refit.  A replica therefore never stalls because another
///   replica's update triggered a retrain.
///
/// The handle is `Clone`; clones share state.  Batching trades staleness for
/// throughput: a freshly learned fix becomes visible to other replicas after
/// at most `batch - 1` further updates (or a [`flush`](SynopsisStore::flush)).
#[derive(Debug, Clone)]
pub struct LockedStore {
    state: Arc<LockedState>,
}

impl LockedStore {
    /// Default number of queued updates that triggers a drain + refit.
    pub const DEFAULT_BATCH: usize = 4;

    /// Creates a locked store of the given kind with the default batch
    /// threshold.
    pub fn new(kind: SynopsisKind) -> Self {
        Self::with_batch(kind, Self::DEFAULT_BATCH)
    }

    /// Creates a locked store that drains after `batch` queued updates
    /// (`1` = drain on every update, i.e. no added staleness).
    pub fn with_batch(kind: SynopsisKind, batch: usize) -> Self {
        LockedStore {
            state: Arc::new(LockedState {
                model: RwLock::new(Synopsis::new(kind)),
                pending: Mutex::new(Vec::new()),
                batch: batch.max(1),
                drains: Mutex::new(0),
                log: Mutex::new(None),
            }),
        }
    }

    /// The configured synopsis kind (inherent mirror of
    /// [`SynopsisStore::kind`] so handle users don't need the trait in
    /// scope).
    pub fn kind(&self) -> SynopsisKind {
        self.read().kind()
    }

    /// Number of successful-fix examples folded into the model so far
    /// (inherent mirror of [`Learner::correct_fixes_learned`]).
    pub fn correct_fixes_learned(&self) -> usize {
        self.read().correct_fixes_learned()
    }

    /// Number of updates currently queued and not yet folded into the model.
    pub fn pending_updates(&self) -> usize {
        self.state
            .pending
            .lock()
            .expect("pending queue poisoned")
            .len()
    }

    /// How many batched drains have run so far.
    pub fn drains(&self) -> u64 {
        *self.state.drains.lock().expect("drain counter poisoned")
    }

    /// Runs `f` against the fitted model under the read lock.
    ///
    /// Exposed so callers can take consistent multi-field snapshots (e.g.
    /// training cost plus accuracy) without cloning the synopsis.
    pub fn with_model<T>(&self, f: impl FnOnce(&Synopsis) -> T) -> T {
        f(&self.read())
    }

    /// Blockingly drains every queued update into the model (inherent
    /// mirror of [`SynopsisStore::flush`]).
    pub fn flush(&self) {
        drain_into(
            &self.state.model,
            &self.state.pending,
            &self.state.drains,
            &self.state.log,
            true,
        );
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Synopsis> {
        self.state.model.read().expect("synopsis lock poisoned")
    }

    /// Opportunistic drain: skips (leaving the queue for a later caller)
    /// when another replica holds the model lock.
    fn try_drain(&self) {
        drain_into(
            &self.state.model,
            &self.state.pending,
            &self.state.drains,
            &self.state.log,
            false,
        );
    }
}

impl Learner for LockedStore {
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        self.read().suggest(symptoms)
    }

    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        self.read().suggest_excluding(symptoms, excluded)
    }

    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        let due = {
            let mut pending = self.state.pending.lock().expect("pending queue poisoned");
            pending.push((symptoms.to_vec(), fix, success));
            pending.len() >= self.state.batch
        };
        if due {
            self.try_drain();
        }
    }

    fn correct_fixes_learned(&self) -> usize {
        self.read().correct_fixes_learned()
    }
}

impl SynopsisStore for LockedStore {
    fn kind(&self) -> SynopsisKind {
        LockedStore::kind(self)
    }

    fn flush(&self) {
        LockedStore::flush(self);
    }

    fn pending_updates(&self) -> usize {
        LockedStore::pending_updates(self)
    }

    fn snapshot(&self) -> SynopsisSnapshot {
        self.flush();
        let mut snapshot = SynopsisSnapshot::new(self.kind());
        self.with_model(|model| append_synopsis(&mut snapshot, model));
        snapshot
    }

    fn restore(&mut self, snapshot: &SynopsisSnapshot) {
        let rebuilt = synopsis_from_snapshot(self.kind(), snapshot);
        self.state
            .pending
            .lock()
            .expect("pending queue poisoned")
            .clear();
        *self.state.model.write().expect("synopsis lock poisoned") = rebuilt;
        recreate_log(&self.state.log, || SynopsisStore::snapshot(self));
    }

    fn clone_store(&self) -> Box<dyn SynopsisStore> {
        Box::new(self.clone())
    }

    fn persist_to(&mut self, path: &Path) -> io::Result<()> {
        let log = SnapshotLog::create(path, &SynopsisStore::snapshot(self))?;
        *self.state.log.lock().expect("snapshot log poisoned") = Some(log);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ShardedStore
// ---------------------------------------------------------------------------

/// The symptom-space router of a [`ShardedStore`].
///
/// Until enough symptom vectors have been observed to fit centroids, every
/// request routes to shard 0 (so a cold sharded fleet behaves exactly like a
/// [`LockedStore`]).  Once `fit_after` distinct observations accumulate, the
/// router fits `k` centroids with Lloyd's k-means (deterministically seeded)
/// and the partition is frozen — fixed blocks, as in cyclic block
/// coordinate descent, so a symptom region never migrates between shards
/// mid-run.
#[derive(Debug)]
struct Router {
    shards: usize,
    fit_after: usize,
    buffer: Vec<Vec<f64>>,
    centroids: Vec<Vec<f64>>,
    fitted: bool,
}

impl Router {
    fn new(shards: usize, fit_after: usize) -> Self {
        Router {
            shards,
            fit_after: fit_after.max(shards),
            buffer: Vec::new(),
            centroids: Vec::new(),
            fitted: shards <= 1,
        }
    }

    /// Nearest-centroid routing; shard 0 before the fit (or with one shard).
    fn route(&self, symptoms: &[f64]) -> usize {
        if self.centroids.len() <= 1 {
            return 0;
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, centroid) in self.centroids.iter().enumerate() {
            let d: f64 = centroid
                .iter()
                .zip(symptoms)
                .map(|(c, s)| (c - s) * (c - s))
                .sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Notes an observed symptom vector; fits the centroids once the buffer
    /// is full.  Returns `true` when this call performed the fit.
    fn observe(&mut self, symptoms: &[f64]) -> bool {
        if self.fitted {
            return false;
        }
        self.buffer.push(symptoms.to_vec());
        if self.buffer.len() < self.fit_after {
            return false;
        }
        self.fit();
        true
    }

    /// Fits `shards` centroids over whatever symptoms are available (the
    /// buffer, or a restored snapshot's vectors).
    fn fit(&mut self) {
        let data = Dataset::from_examples(
            self.buffer
                .iter()
                .map(|s| Example::new(s.clone(), 0))
                .collect(),
        );
        if data.is_empty() {
            return;
        }
        let mut kmeans = KMeans::lloyd(self.shards, 50).with_seed(ShardedStore::ROUTE_SEED);
        kmeans.fit(&data);
        self.centroids = kmeans
            .clusters()
            .iter()
            .map(|c| c.centroid.clone())
            .collect();
        self.buffer.clear();
        self.fitted = true;
    }
}

#[derive(Debug)]
struct Shard {
    model: RwLock<Synopsis>,
    pending: Mutex<Vec<PendingUpdate>>,
}

#[derive(Debug)]
struct ShardedState {
    kind: SynopsisKind,
    batch: usize,
    shards: Vec<Shard>,
    router: RwLock<Router>,
    drains: Mutex<u64>,
    log: Mutex<Option<SnapshotLog>>,
}

/// A fleet-shared store that partitions symptom space across `k`
/// independently locked synopses.
///
/// Every suggest/record is routed to the shard owning the symptom's region
/// (nearest fitted centroid), so replicas healing *different* failure modes
/// update disjoint models and never contend on one global lock — the paper's
/// shared-learning benefit without its single-writer bottleneck.  Each shard
/// batches its writes exactly like a [`LockedStore`]; with `k = 1` the two
/// are byte-for-byte equivalent (`tests/stores.rs` asserts the fingerprint).
///
/// The handle is `Clone`; clones share state.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    state: Arc<ShardedState>,
}

impl ShardedStore {
    /// Observations buffered before the routing centroids are fitted.
    pub const DEFAULT_FIT_AFTER: usize = 32;

    /// Seed of the deterministic Lloyd fit behind the router.
    pub const ROUTE_SEED: u64 = 0x5ead_c0de;

    /// Creates a sharded store with the default batch threshold and router
    /// warm-up.
    pub fn new(kind: SynopsisKind, shards: usize) -> Self {
        Self::with_batch(kind, shards, LockedStore::DEFAULT_BATCH)
    }

    /// Creates a sharded store whose shards drain after `batch` queued
    /// updates each.
    pub fn with_batch(kind: SynopsisKind, shards: usize, batch: usize) -> Self {
        let shards = shards.max(1);
        ShardedStore {
            state: Arc::new(ShardedState {
                kind,
                batch: batch.max(1),
                shards: (0..shards)
                    .map(|_| Shard {
                        model: RwLock::new(Synopsis::new(kind)),
                        pending: Mutex::new(Vec::new()),
                    })
                    .collect(),
                router: RwLock::new(Router::new(shards, Self::DEFAULT_FIT_AFTER)),
                drains: Mutex::new(0),
                log: Mutex::new(None),
            }),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.state.shards.len()
    }

    /// Whether the routing centroids have been fitted yet (before the fit,
    /// all traffic goes to shard 0).
    pub fn routing_fitted(&self) -> bool {
        self.state.router.read().expect("router poisoned").fitted
    }

    /// Successful-fix examples per shard — how the symptom space actually
    /// partitioned.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.state
            .shards
            .iter()
            .map(|s| {
                s.model
                    .read()
                    .expect("shard lock poisoned")
                    .correct_fixes_learned()
            })
            .collect()
    }

    /// How many batched drains have run across all shards.
    pub fn drains(&self) -> u64 {
        *self.state.drains.lock().expect("drain counter poisoned")
    }

    fn route(&self, symptoms: &[f64]) -> usize {
        self.state
            .router
            .read()
            .expect("router poisoned")
            .route(symptoms)
    }

    fn flush_shard(&self, shard: &Shard) {
        drain_into(
            &shard.model,
            &shard.pending,
            &self.state.drains,
            &self.state.log,
            true,
        );
    }

    /// Drains every shard and collects the store's entire experience —
    /// internal re-homing support, so it leaves the drain counter alone.
    ///
    /// Lock ordering: callers hold the router write lock; shard locks nest
    /// under it (the same order [`SynopsisStore::restore`] uses, and no path
    /// acquires them in reverse).
    fn collect_resident(&self) -> SynopsisSnapshot {
        let mut snapshot = SynopsisSnapshot::new(self.state.kind);
        for shard in &self.state.shards {
            let updates = {
                let mut pending = shard.pending.lock().expect("shard queue poisoned");
                std::mem::take(&mut *pending)
            };
            let mut model = shard.model.write().expect("shard lock poisoned");
            if !updates.is_empty() {
                // Re-homing drains these updates outside drain_into, so the
                // incremental log must hear about them here.
                log_drained(&self.state.log, &updates);
                model.absorb(updates);
            }
            append_synopsis(&mut snapshot, &model);
        }
        snapshot
    }

    /// Rebuilds every shard's model from `snapshot`, partitioned by the
    /// given router's (current) centroids.
    fn partition_into_shards(&self, router: &Router, snapshot: &SynopsisSnapshot) {
        let mut per_shard: Vec<SynopsisSnapshot> = (0..self.state.shards.len())
            .map(|_| SynopsisSnapshot::new(self.state.kind))
            .collect();
        for example in &snapshot.examples {
            per_shard[router.route(&example.symptoms)]
                .examples
                .push(example.clone());
        }
        for (shard, slice) in self.state.shards.iter().zip(&per_shard) {
            shard.pending.lock().expect("shard queue poisoned").clear();
            *shard.model.write().expect("shard lock poisoned") =
                synopsis_from_snapshot(self.state.kind, slice);
        }
    }

    fn try_drain_shard(&self, shard: &Shard) {
        drain_into(
            &shard.model,
            &shard.pending,
            &self.state.drains,
            &self.state.log,
            false,
        );
    }
}

impl Learner for ShardedStore {
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        let shard = &self.state.shards[self.route(symptoms)];
        shard
            .model
            .read()
            .expect("shard lock poisoned")
            .suggest(symptoms)
    }

    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        let shard = &self.state.shards[self.route(symptoms)];
        shard
            .model
            .read()
            .expect("shard lock poisoned")
            .suggest_excluding(symptoms, excluded)
    }

    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        let unfitted = !self.state.router.read().expect("router poisoned").fitted;
        if unfitted {
            let mut router = self.state.router.write().expect("router poisoned");
            if router.observe(symptoms) {
                // The partition just froze.  Everything recorded so far
                // routed to shard 0; re-home it under the new centroids so
                // pre-fit experience stays reachable from its region's
                // shard instead of being stranded.
                let resident = self.collect_resident();
                self.partition_into_shards(&router, &resident);
            }
        }
        // Route and enqueue under one router read guard: a concurrent fit
        // (router write) therefore cannot slip between the two and strand
        // this update on a shard the new centroids no longer route to —
        // the fit's re-homing sees either the queued update or none.
        let (index, due) = {
            let router = self.state.router.read().expect("router poisoned");
            let index = router.route(symptoms);
            let mut pending = self.state.shards[index]
                .pending
                .lock()
                .expect("shard queue poisoned");
            pending.push((symptoms.to_vec(), fix, success));
            (index, pending.len() >= self.state.batch)
        };
        if due {
            self.try_drain_shard(&self.state.shards[index]);
        }
    }

    fn correct_fixes_learned(&self) -> usize {
        self.shard_sizes().iter().sum()
    }
}

impl SynopsisStore for ShardedStore {
    fn kind(&self) -> SynopsisKind {
        self.state.kind
    }

    fn flush(&self) {
        for shard in &self.state.shards {
            self.flush_shard(shard);
        }
    }

    fn pending_updates(&self) -> usize {
        self.state
            .shards
            .iter()
            .map(|s| s.pending.lock().expect("shard queue poisoned").len())
            .sum()
    }

    fn snapshot(&self) -> SynopsisSnapshot {
        self.flush();
        let mut snapshot = SynopsisSnapshot::new(self.state.kind);
        for shard in &self.state.shards {
            let model = shard.model.read().expect("shard lock poisoned");
            append_synopsis(&mut snapshot, &model);
        }
        snapshot
    }

    fn restore(&mut self, snapshot: &SynopsisSnapshot) {
        let mut router = self.state.router.write().expect("router poisoned");
        // Refit the routing centroids from the snapshot's symptom vectors so
        // restored experience lands on the shards that will serve it.  With
        // too few examples to fit, stale centroids from a previous fit are
        // discarded too — routing falls back to shard 0 (where the examples
        // are about to land) until the warm-up buffer refills.
        if self.state.shards.len() > 1 {
            router.buffer = snapshot
                .examples
                .iter()
                .map(|e| e.symptoms.clone())
                .collect();
            router.fitted = false;
            router.centroids.clear();
            if router.buffer.len() >= self.state.shards.len() {
                router.fit();
            }
        }
        // Partition the experience by routed shard and rebuild each model.
        self.partition_into_shards(&router, snapshot);
        drop(router);
        recreate_log(&self.state.log, || SynopsisStore::snapshot(self));
    }

    fn clone_store(&self) -> Box<dyn SynopsisStore> {
        Box::new(self.clone())
    }

    fn persist_to(&mut self, path: &Path) -> io::Result<()> {
        let log = SnapshotLog::create(path, &SynopsisStore::snapshot(self))?;
        *self.state.log.lock().expect("snapshot log poisoned") = Some(log);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn symptom(kind: usize) -> Vec<f64> {
        match kind {
            0 => vec![8.0, 1.0, 1.0],
            1 => vec![1.0, 9.0, 1.0],
            _ => vec![1.0, 1.0, 7.0],
        }
    }

    const FIXES: [FixKind; 3] = [
        FixKind::RepartitionMemory,
        FixKind::MicrorebootEjb,
        FixKind::UpdateStatistics,
    ];

    #[test]
    fn locked_updates_are_batched_until_the_threshold() {
        let mut shared = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 3);
        shared.record(&symptom(0), FixKind::RepartitionMemory, true);
        shared.record(&symptom(1), FixKind::MicrorebootEjb, true);
        assert_eq!(shared.pending_updates(), 2);
        assert_eq!(shared.correct_fixes_learned(), 0, "not yet drained");
        assert!(shared.suggest(&symptom(0)).is_none());

        shared.record(&symptom(2), FixKind::UpdateStatistics, true);
        assert_eq!(shared.pending_updates(), 0);
        assert_eq!(shared.correct_fixes_learned(), 3);
        assert_eq!(shared.drains(), 1);
        assert_eq!(
            shared.suggest(&symptom(0)).unwrap().0,
            FixKind::RepartitionMemory
        );
        assert_eq!(
            shared.with_model(|m| m.retrains()),
            1,
            "one refit for the whole batch"
        );
    }

    #[test]
    fn locked_flush_publishes_a_partial_batch() {
        let mut shared = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 64);
        shared.record(&symptom(0), FixKind::RepartitionMemory, true);
        assert!(shared.suggest(&symptom(0)).is_none());
        LockedStore::flush(&shared);
        assert_eq!(
            shared.suggest(&symptom(0)).unwrap().0,
            FixKind::RepartitionMemory
        );
        // A second flush with an empty queue is a no-op.
        LockedStore::flush(&shared);
        assert_eq!(shared.drains(), 1);
    }

    #[test]
    fn locked_clones_share_learned_state() {
        let mut a = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 1);
        let b = a.clone();
        a.record(&symptom(1), FixKind::MicrorebootEjb, true);
        assert_eq!(b.correct_fixes_learned(), 1);
        assert_eq!(b.suggest(&symptom(1)).unwrap().0, FixKind::MicrorebootEjb);
    }

    #[test]
    fn failed_fixes_never_become_positives() {
        let mut shared = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 1);
        shared.record(&symptom(0), FixKind::KillHungQuery, false);
        LockedStore::flush(&shared);
        assert_eq!(shared.correct_fixes_learned(), 0);
        assert_eq!(shared.with_model(|m| m.failed_fixes_recorded()), 1);
    }

    #[test]
    fn concurrent_recorders_lose_no_updates() {
        let shared = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 5);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let mut handle = shared.clone();
                thread::spawn(move || {
                    for i in 0..25 {
                        let class = (t + i) % 3;
                        handle.record(&symptom(class), FIXES[class], true);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread panicked");
        }
        LockedStore::flush(&shared);
        assert_eq!(shared.correct_fixes_learned(), 100);
        assert!(shared.drains() >= 1);
        assert_eq!(
            shared.suggest(&symptom(0)).unwrap().0,
            FixKind::RepartitionMemory
        );
    }

    #[test]
    fn private_store_learns_immediately_and_snapshots() {
        let mut store = PrivateStore::new(SynopsisKind::NearestNeighbor);
        store.record(&symptom(0), FixKind::RepartitionMemory, true);
        store.record(&symptom(1), FixKind::MicrorebootEjb, false);
        assert_eq!(store.correct_fixes_learned(), 1);
        assert_eq!(store.pending_updates(), 0);
        let snap = store.snapshot();
        assert_eq!(snap.positives(), 1);
        assert_eq!(snap.negatives(), 1);

        let mut restored = PrivateStore::new(SynopsisKind::NearestNeighbor);
        restored.restore(&snap);
        assert_eq!(restored.correct_fixes_learned(), 1);
        assert_eq!(
            restored.suggest(&symptom(0)).unwrap().0,
            FixKind::RepartitionMemory
        );
        assert_eq!(restored.synopsis().failed_fixes_recorded(), 1);
        // One bootstrap refit, not one per example.
        assert_eq!(restored.synopsis().retrains(), 1);
    }

    #[test]
    fn private_clone_store_is_a_deep_copy() {
        let mut a = PrivateStore::new(SynopsisKind::NearestNeighbor);
        a.record(&symptom(0), FixKind::RepartitionMemory, true);
        let mut b = a.clone_store();
        b.record(&symptom(1), FixKind::MicrorebootEjb, true);
        assert_eq!(a.correct_fixes_learned(), 1, "original unaffected");
        assert_eq!(b.correct_fixes_learned(), 2);
    }

    #[test]
    fn snapshots_restore_across_store_and_synopsis_kinds() {
        let mut locked = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 1);
        for i in 0..12 {
            let class = i % 3;
            locked.record(&symptom(class), FIXES[class], true);
        }
        let snap = SynopsisStore::snapshot(&locked);

        // Restore into a different store type AND a different model kind.
        let mut sharded = ShardedStore::new(SynopsisKind::KMeans, 3);
        sharded.restore(&snap);
        assert_eq!(sharded.correct_fixes_learned(), 12);
        for (class, fix) in FIXES.iter().enumerate() {
            assert_eq!(
                sharded.suggest(&symptom(class)).unwrap().0,
                *fix,
                "class {class}"
            );
        }
    }

    #[test]
    fn sharded_routes_to_shard_zero_until_the_fit() {
        let mut store = ShardedStore::with_batch(SynopsisKind::NearestNeighbor, 4, 1);
        assert!(!store.routing_fitted());
        for i in 0..8 {
            let class = i % 3;
            store.record(&symptom(class), FIXES[class], true);
        }
        assert!(!store.routing_fitted(), "fit_after not reached");
        assert_eq!(store.shard_sizes()[0], 8, "everything on shard 0 pre-fit");

        for i in 0..ShardedStore::DEFAULT_FIT_AFTER {
            let class = i % 3;
            store.record(&symptom(class), FIXES[class], true);
        }
        assert!(store.routing_fitted());
        // Post-fit traffic spreads across shards.
        for i in 0..30 {
            let class = i % 3;
            store.record(&symptom(class), FIXES[class], true);
        }
        SynopsisStore::flush(&store);
        let sizes = store.shard_sizes();
        assert!(
            sizes.iter().filter(|&&n| n > 0).count() >= 2,
            "post-fit updates must land on multiple shards: {sizes:?}"
        );
        // Suggestions still resolve correctly through the router.
        for (class, fix) in FIXES.iter().enumerate() {
            assert_eq!(store.suggest(&symptom(class)).unwrap().0, *fix);
        }
    }

    #[test]
    fn one_shard_store_matches_a_locked_store_update_for_update() {
        let mut locked = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 4);
        let mut sharded = ShardedStore::with_batch(SynopsisKind::NearestNeighbor, 1, 4);
        for i in 0..23 {
            let class = i % 3;
            let success = i % 5 != 0;
            locked.record(&symptom(class), FIXES[class], success);
            sharded.record(&symptom(class), FIXES[class], success);
            assert_eq!(
                LockedStore::pending_updates(&locked),
                SynopsisStore::pending_updates(&sharded),
                "at update {i}"
            );
            assert_eq!(
                locked.correct_fixes_learned(),
                sharded.correct_fixes_learned(),
                "at update {i}"
            );
            assert_eq!(
                locked.suggest(&symptom(class)),
                sharded.suggest(&symptom(class)),
                "at update {i}"
            );
        }
    }

    #[test]
    fn pre_fit_experience_survives_the_router_fit() {
        let mut store = ShardedStore::with_batch(SynopsisKind::NearestNeighbor, 4, 1);
        // A rare failure healed before the routing centroids exist.
        let rare = vec![50.0, 50.0, 50.0];
        store.record(&rare, FixKind::RebuildIndex, true);
        assert_eq!(store.suggest(&rare).unwrap().0, FixKind::RebuildIndex);

        // Bulk traffic triggers the centroid fit.
        for i in 0..(2 * ShardedStore::DEFAULT_FIT_AFTER) {
            let class = i % 3;
            store.record(&symptom(class), FIXES[class], true);
        }
        assert!(store.routing_fitted());

        // The rare signature now routes by centroid — and must still find
        // the experience recorded while everything lived on shard 0.
        assert_eq!(
            store.suggest(&rare).map(|(fix, _)| fix),
            Some(FixKind::RebuildIndex),
            "pre-fit experience must be re-homed, not stranded on shard 0"
        );
        for (class, fix) in FIXES.iter().enumerate() {
            assert_eq!(store.suggest(&symptom(class)).unwrap().0, *fix);
        }
        SynopsisStore::flush(&store);
        assert_eq!(
            store.correct_fixes_learned(),
            1 + 2 * ShardedStore::DEFAULT_FIT_AFTER,
            "re-homing loses nothing"
        );
    }

    #[test]
    fn restoring_a_small_snapshot_discards_stale_centroids() {
        // Fit the router on one distribution...
        let mut store = ShardedStore::with_batch(SynopsisKind::NearestNeighbor, 4, 1);
        for i in 0..(2 * ShardedStore::DEFAULT_FIT_AFTER) {
            let class = i % 3;
            store.record(&symptom(class), FIXES[class], true);
        }
        assert!(store.routing_fitted());

        // ...then restore a snapshot too small to refit centroids.
        let mut snap = SynopsisSnapshot::new(SynopsisKind::NearestNeighbor);
        snap.push(vec![50.0, 50.0, 50.0], FixKind::RebuildIndex, true);
        store.restore(&snap);
        assert!(!store.routing_fitted(), "old partition must not survive");
        assert_eq!(store.correct_fixes_learned(), 1);
        assert_eq!(
            store.suggest(&[50.0, 50.0, 50.0]).unwrap().0,
            FixKind::RebuildIndex,
            "restored experience must be reachable under the reset routing"
        );
    }

    #[test]
    fn sharded_restore_partitions_and_warm_starts() {
        let mut cold = ShardedStore::with_batch(SynopsisKind::NearestNeighbor, 4, 1);
        for i in 0..60 {
            let class = i % 3;
            cold.record(&symptom(class), FIXES[class], true);
        }
        let snap = SynopsisStore::snapshot(&cold);

        let mut warm = ShardedStore::new(SynopsisKind::NearestNeighbor, 4);
        warm.restore(&snap);
        assert!(warm.routing_fitted(), "restore fits the router");
        assert_eq!(warm.correct_fixes_learned(), 60);
        let sizes = warm.shard_sizes();
        assert!(
            sizes.iter().filter(|&&n| n > 0).count() >= 2,
            "restored experience spreads across shards: {sizes:?}"
        );
        for (class, fix) in FIXES.iter().enumerate() {
            assert_eq!(warm.suggest(&symptom(class)).unwrap().0, *fix);
        }
    }

    #[test]
    fn incremental_persistence_appends_on_each_drain() {
        let dir = std::env::temp_dir().join("selfheal_store_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("locked.jsonl");

        let mut store = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 2);
        store.record(&symptom(0), FIXES[0], true);
        SynopsisStore::persist_to(&mut store, &path).unwrap();
        // The pending (undrained) update seeded the file via the flush
        // inside snapshot().
        assert_eq!(SynopsisSnapshot::load(&path).unwrap().len(), 1);

        // One full batch drains — and lands in the file immediately, not at
        // quiesce.
        store.record(&symptom(1), FIXES[1], true);
        store.record(&symptom(2), FIXES[2], false);
        assert_eq!(LockedStore::pending_updates(&store), 0, "batch drained");
        let mid_run = SynopsisSnapshot::load(&path).unwrap();
        assert_eq!(mid_run.len(), 3, "drained outcomes are on disk mid-run");

        // A queued-but-undrained update is not yet on disk ("restart
        // restores everything appended so far" — i.e. up to the last
        // drain)...
        store.record(&symptom(0), FIXES[0], true);
        assert_eq!(SynopsisSnapshot::load(&path).unwrap().len(), 3);

        // ...and a "restarted process" warm-starts from the mid-run file.
        let mut revived = LockedStore::new(SynopsisKind::NearestNeighbor);
        revived.restore(&mid_run);
        assert_eq!(revived.correct_fixes_learned(), 2);
        assert_eq!(revived.suggest(&symptom(0)).unwrap().0, FIXES[0]);

        // The final flush appends the tail.
        LockedStore::flush(&store);
        assert_eq!(SynopsisSnapshot::load(&path).unwrap().len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_and_private_stores_persist_incrementally_too() {
        let dir = std::env::temp_dir().join("selfheal_store_persist_test");
        std::fs::create_dir_all(&dir).unwrap();

        let sharded_path = dir.join("sharded.jsonl");
        let mut sharded = ShardedStore::with_batch(SynopsisKind::NearestNeighbor, 3, 1);
        sharded.persist_to(&sharded_path).unwrap();
        // Enough traffic to trigger the centroid fit and its re-homing
        // drain path.
        for i in 0..(2 * ShardedStore::DEFAULT_FIT_AFTER) {
            let class = i % 3;
            sharded.record(&symptom(class), FIXES[class], true);
        }
        SynopsisStore::flush(&sharded);
        let loaded = SynopsisSnapshot::load(&sharded_path).unwrap();
        assert_eq!(
            loaded.len(),
            2 * ShardedStore::DEFAULT_FIT_AFTER,
            "every drained outcome (incl. re-homed ones) is on disk exactly once"
        );

        let private_path = dir.join("private.jsonl");
        let mut private = PrivateStore::new(SynopsisKind::NearestNeighbor);
        private.record(&symptom(0), FIXES[0], true);
        private.persist_to(&private_path).unwrap();
        private.record(&symptom(1), FIXES[1], false);
        // Immediate-apply store: every record is a drain.
        assert_eq!(SynopsisSnapshot::load(&private_path).unwrap().len(), 2);

        std::fs::remove_file(&sharded_path).ok();
        std::fs::remove_file(&private_path).ok();
    }

    #[test]
    fn boxed_store_handles_drive_the_learner_surface() {
        let shared = ShardedStore::with_batch(SynopsisKind::NearestNeighbor, 2, 1);
        let mut handle: Box<dyn SynopsisStore> = shared.clone_store();
        handle.record(&symptom(0), FixKind::RepartitionMemory, true);
        handle.flush();
        assert_eq!(handle.correct_fixes_learned(), 1);
        assert_eq!(shared.correct_fixes_learned(), 1, "handles share state");
        assert_eq!(
            handle.suggest(&symptom(0)).unwrap().0,
            FixKind::RepartitionMemory
        );
        assert!(handle
            .suggest_excluding(&symptom(0), &HashSet::from([FixKind::RepartitionMemory]))
            .is_none());
        assert_eq!(handle.kind(), SynopsisKind::NearestNeighbor);
    }
}
