//! Proactive application of fixes (Section 5.3).
//!
//! "Some failures can force the service into a state where it is not
//! possible to use or recover the service quickly.  In these settings, an
//! approach where failures are predicted in advance and fixes applied
//! proactively, can be more attractive.  Such strategies need synopses that
//! can forecast failures."
//!
//! [`ProactiveHealer`] forecasts the response-time trajectory with a sliding
//! linear trend; when the forecast crosses the SLO threshold within the
//! configured horizon, it applies a preventive fix *before* the SLO is
//! violated — choosing the fix from the diagnosis engines evaluated on the
//! degradation seen so far (and falling back to an application-tier reboot,
//! the generic remedy for gradual degradation such as software aging).
//! When a violation does slip through, it reacts like the reactive hybrid.

use crate::policy::EpisodeTracker;
use selfheal_diagnosis::{AnomalyDetector, BottleneckAnalyzer, DiagnosisContext, ManualRuleBase};
use selfheal_faults::{FaultTarget, FixAction, FixKind};
use selfheal_learn::forecast::{steps_until_threshold, Forecaster, SlidingLinearTrend};
use selfheal_sim::scenario::Healer;
use selfheal_sim::service::TickOutcome;
use selfheal_telemetry::{Schema, SeriesStore, SloTargets};

/// Forecast-driven proactive healer.
#[derive(Debug)]
pub struct ProactiveHealer {
    series: SeriesStore,
    ctx: DiagnosisContext,
    anomaly: AnomalyDetector,
    bottleneck: BottleneckAnalyzer,
    manual: ManualRuleBase,
    forecaster: SlidingLinearTrend,
    tracker: EpisodeTracker,
    /// How far ahead (ticks) the forecast must cross the SLO before acting.
    pub horizon_ticks: usize,
    /// Minimum ticks between proactive interventions.
    pub cooldown_ticks: u64,
    last_proactive_at: Option<u64>,
    proactive_fixes: u64,
    reactive_fixes: u64,
}

impl ProactiveHealer {
    /// Creates a proactive healer for a service with the given schema and
    /// SLO targets.
    pub fn new(schema: &Schema, targets: SloTargets) -> Self {
        ProactiveHealer {
            series: SeriesStore::new(schema.clone(), 4096),
            ctx: DiagnosisContext::from_schema(schema, targets),
            anomaly: AnomalyDetector::standard(),
            bottleneck: BottleneckAnalyzer::standard(),
            manual: ManualRuleBase::standard(),
            forecaster: SlidingLinearTrend::new(30),
            tracker: EpisodeTracker::new(3, 25),
            horizon_ticks: 60,
            cooldown_ticks: 120,
            last_proactive_at: None,
            proactive_fixes: 0,
            reactive_fixes: 0,
        }
    }

    /// `(proactive, reactive)` fix counts.
    pub fn fix_counts(&self) -> (u64, u64) {
        (self.proactive_fixes, self.reactive_fixes)
    }

    fn best_diagnosis(&self, tried: &std::collections::HashSet<FixKind>) -> Option<FixAction> {
        let mut candidates = Vec::new();
        candidates.extend(self.anomaly.diagnose(&self.series, &self.ctx));
        candidates.extend(self.bottleneck.diagnose(&self.series, &self.ctx));
        let mut manual = self.manual.diagnose(&self.series, &self.ctx);
        manual.retain(|d| d.fix.kind != FixKind::FullServiceRestart);
        candidates.extend(manual);
        candidates.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("finite confidence")
        });
        candidates
            .into_iter()
            .find(|d| !tried.contains(&d.fix.kind))
            .map(|d| d.fix)
    }
}

impl Healer for ProactiveHealer {
    fn name(&self) -> &str {
        "proactive"
    }

    fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction> {
        let violated = !outcome.violations.is_empty();
        self.series.push(outcome.sample.clone());
        self.forecaster
            .observe(outcome.sample.get(self.ctx.response_ms));

        let _ = self.tracker.resolve(outcome, violated);

        // Reactive path when a violation slipped through.
        if self.tracker.should_act(violated) {
            let tried = self.tracker.tried_kinds();
            let action = if self.tracker.exhausted() {
                FixAction::untargeted(FixKind::FullServiceRestart)
            } else {
                self.best_diagnosis(&tried)
                    .unwrap_or_else(|| FixAction::untargeted(FixKind::FullServiceRestart))
            };
            self.tracker.record_attempt(action);
            self.reactive_fixes += 1;
            return vec![action];
        }

        // Proactive path: act when the forecast crosses the SLO soon.
        if violated || self.tracker.in_episode() {
            return Vec::new();
        }
        let in_cooldown = self
            .last_proactive_at
            .map(|t| outcome.tick.saturating_sub(t) < self.cooldown_ticks)
            .unwrap_or(false);
        if in_cooldown || self.forecaster.observations() < 30 {
            return Vec::new();
        }
        let crossing = steps_until_threshold(
            &self.forecaster,
            self.ctx.slo_response_ms,
            self.horizon_ticks,
        );
        if crossing.is_none() {
            return Vec::new();
        }

        // A violation is coming: pick the best preventive fix from the
        // diagnosis engines, defaulting to rejuvenating the application tier
        // (the classic countermeasure to gradual degradation).
        let empty = std::collections::HashSet::new();
        let action = self
            .best_diagnosis(&empty)
            .unwrap_or_else(|| FixAction::targeted(FixKind::RebootTier, FaultTarget::AppTier));
        self.last_proactive_at = Some(outcome.tick);
        self.proactive_fixes += 1;
        vec![action]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::{FaultId, FaultKind, FaultSpec};
    use selfheal_sim::{MultiTierService, ServiceConfig};
    use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

    fn run_aging_scenario<H: Healer>(mut healer: H, ticks: u64) -> (MultiTierService, H, u64) {
        let config = ServiceConfig::tiny();
        let mut service = MultiTierService::new(config);
        let mut workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
            13,
        );
        let mut fixes = 0u64;
        for t in 0..ticks {
            if t == 50 {
                service.inject(FaultSpec::new(
                    FaultId(1),
                    FaultKind::SoftwareAging,
                    FaultTarget::AppTier,
                    0.9,
                ));
            }
            let requests = workload.tick(service.current_tick());
            let outcome = service.tick(&requests);
            for action in healer.observe(&outcome) {
                service.apply_fix(action);
                fixes += 1;
            }
        }
        (service, healer, fixes)
    }

    #[test]
    fn proactive_healer_intervenes_and_limits_violations_under_aging() {
        let config = ServiceConfig::tiny();
        let schema = MultiTierService::new(config.clone()).schema().clone();
        let healer = ProactiveHealer::new(&schema, config.slo_targets());
        let (service, healer, fixes) = run_aging_scenario(healer, 500);
        assert!(fixes >= 1, "the healer must act");
        let (proactive, reactive) = healer.fix_counts();
        assert!(
            proactive + reactive >= 1,
            "some intervention must be recorded ({proactive}, {reactive})"
        );
        // Aging under a proactive/reactive healer ends up either repaired
        // (tier reboot removed the leak) or fully mitigated (extra capacity
        // provisioned); in both cases the service must be SLO-compliant.
        assert!(
            service.active_faults().is_empty() || !service.slo_violated(),
            "the service must end the run repaired or mitigated"
        );
        assert_eq!(healer.name(), "proactive");
    }

    #[test]
    fn proactive_healer_beats_no_healing_on_slo_violation_time() {
        let config = ServiceConfig::tiny();
        let schema = MultiTierService::new(config.clone()).schema().clone();
        let healer = ProactiveHealer::new(&schema, config.slo_targets());
        let (healed_service, _, _) = run_aging_scenario(healer, 500);
        let (unhealed_service, _, _) = run_aging_scenario(selfheal_sim::scenario::NoHealing, 500);
        assert!(
            healed_service.violation_fraction() < unhealed_service.violation_fraction(),
            "healed {} vs unhealed {}",
            healed_service.violation_fraction(),
            unhealed_service.violation_fraction()
        );
    }

    #[test]
    fn healthy_service_triggers_no_proactive_fixes() {
        let config = ServiceConfig::tiny();
        let mut service = MultiTierService::new(config.clone());
        let mut workload = TraceGenerator::new(
            WorkloadMix::browsing(),
            ArrivalProcess::Constant { rate: 20.0 },
            17,
        );
        let mut healer = ProactiveHealer::new(service.schema(), config.slo_targets());
        for _ in 0..200 {
            let requests = workload.tick(service.current_tick());
            let outcome = service.tick(&requests);
            assert!(healer.observe(&outcome).is_empty());
        }
        assert_eq!(healer.fix_counts(), (0, 0));
    }
}
