//! Feature selection and transformation operators.
//!
//! Section 3 of the paper lists "operators for data transformation (e.g.,
//! aggregation, feature selection)" among the synopses a learning-based
//! approach maintains, and Section 4.3.4 describes how FixSym "identifies a
//! subset Ω of attributes in X1,...,Xn that classify the symptoms of working
//! and failed states of the service in the best manner".  These routines
//! compute that subset.

use crate::dataset::Dataset;
use crate::stats::pearson;

/// Returns the indexes of columns whose variance exceeds `min_variance`.
///
/// Constant (or near-constant) metrics carry no signal about which failure
/// occurred and only slow the learners down.
pub fn variance_filter(data: &Dataset, min_variance: f64) -> Vec<usize> {
    data.column_stats()
        .iter()
        .enumerate()
        .filter(|(_, (_, std))| std * std > min_variance)
        .map(|(i, _)| i)
        .collect()
}

/// Scores each column by the absolute Pearson correlation between the column
/// and the (numeric) label, returning `(column, |correlation|)` pairs sorted
/// by decreasing score.
///
/// This is the simplest label-relevance ranking; the correlation-analysis
/// diagnosis uses the same machinery with the failure indicator as the
/// label.
pub fn correlation_ranking(data: &Dataset) -> Vec<(usize, f64)> {
    let labels: Vec<f64> = data.iter().map(|(_, l)| l as f64).collect();
    let mut scores: Vec<(usize, f64)> = (0..data.width())
        .map(|c| {
            let column: Vec<f64> = data.iter().map(|(f, _)| f[c]).collect();
            (c, pearson(&column, &labels).abs())
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    scores
}

/// Selects the signature attribute set Ω: drops near-constant columns, then
/// keeps the `max_features` columns most correlated with the label.
///
/// Returns column indexes in ascending order so projections are stable.
pub fn select_signature(data: &Dataset, max_features: usize) -> Vec<usize> {
    let informative = variance_filter(data, 1e-12);
    if informative.is_empty() || max_features == 0 {
        return Vec::new();
    }
    let projected = data.project(&informative);
    let ranked = correlation_ranking(&projected);
    let mut selected: Vec<usize> = ranked
        .into_iter()
        .take(max_features)
        .map(|(local_idx, _)| informative[local_idx])
        .collect();
    selected.sort_unstable();
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Example;

    /// Column 0: constant.  Column 1: perfectly tracks the label.
    /// Column 2: noise uncorrelated with the label.
    fn data() -> Dataset {
        let rows = [
            (0.0, 0usize),
            (1.0, 1usize),
            (0.0, 0usize),
            (1.0, 1usize),
            (0.0, 0usize),
            (1.0, 1usize),
        ];
        let noise = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        Dataset::from_examples(
            rows.iter()
                .zip(noise)
                .map(|((signal, label), n)| Example::new(vec![7.0, *signal * 10.0, n], *label))
                .collect(),
        )
    }

    #[test]
    fn variance_filter_drops_constant_columns() {
        let cols = variance_filter(&data(), 1e-9);
        assert_eq!(cols, vec![1, 2]);
    }

    #[test]
    fn correlation_ranking_puts_the_signal_first() {
        let ranked = correlation_ranking(&data());
        assert_eq!(ranked[0].0, 1, "column 1 tracks the label exactly");
        assert!(ranked[0].1 > 0.99);
        // The constant column has zero correlation.
        let constant = ranked.iter().find(|(c, _)| *c == 0).unwrap();
        assert_eq!(constant.1, 0.0);
    }

    #[test]
    fn select_signature_prefers_informative_columns() {
        let sig = select_signature(&data(), 1);
        assert_eq!(sig, vec![1]);
        let sig2 = select_signature(&data(), 2);
        assert_eq!(sig2, vec![1, 2]);
        assert!(select_signature(&data(), 0).is_empty());
    }

    #[test]
    fn select_signature_on_constant_data_is_empty() {
        let d = Dataset::from_examples(vec![
            Example::new(vec![1.0, 1.0], 0),
            Example::new(vec![1.0, 1.0], 1),
        ]);
        assert!(select_signature(&d, 3).is_empty());
    }

    #[test]
    fn signature_indices_are_sorted_and_unique() {
        let sig = select_signature(&data(), 10);
        let mut sorted = sig.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sig, sorted);
    }
}
