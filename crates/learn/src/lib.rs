//! # selfheal-learn
//!
//! A small, from-scratch machine-learning substrate for learning-based
//! self-healing, providing exactly the model families *Toward Self-Healing
//! Multitier Services* (Cook et al., ICDE 2007) evaluates or references:
//!
//! * [`knn::NearestNeighbor`] — the nearest-neighbor synopsis of Section 5.2
//!   (maps a new failure data point to the closest previously seen point and
//!   recommends the fix that worked for it).
//! * [`kmeans::KMeans`] — the k-means synopsis (clusters failure points by
//!   the fix that repaired them and recommends the fix of the nearest
//!   cluster representative).
//! * [`adaboost::AdaBoost`] — the ensemble synopsis (SAMME-style multi-class
//!   AdaBoost over decision stumps; the paper uses 60 weak learners).
//! * [`naive_bayes::GaussianNaiveBayes`] — the probabilistic model family
//!   used for correlation analysis ("e.g., by building a Bayesian network")
//!   and for confidence estimates (Section 5.2).
//! * [`stats`] — Pearson correlation and the chi-square test used by anomaly
//!   detection (Example 2: "Deviation can be detected, e.g., using the χ²
//!   statistical test").
//! * [`feature`] — simple feature selection ("operators for data
//!   transformation (e.g., aggregation, feature selection)").
//! * [`eval`] — accuracy, confusion matrices, and train/test evaluation used
//!   to regenerate Figure 4 and Table 3.
//! * [`online`] — incremental-update wrappers for online synopsis learning
//!   (Section 5.2 "Online learning").
//! * [`forecast`] — time-series forecasting for proactive healing
//!   (Section 5.3).
//!
//! The Rust ecosystem has no ML library in the allowed offline crate set,
//! and the three learners the paper compares are fully specified and
//! standard, so implementing them here keeps the reproduction self-contained
//! and deterministic (all randomized routines take a caller-provided
//! [`rand::Rng`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaboost;
pub mod dataset;
pub mod distance;
pub mod eval;
pub mod feature;
pub mod forecast;
pub mod kmeans;
pub mod knn;
pub mod naive_bayes;
pub mod online;
pub mod stats;
pub mod stump;

pub use adaboost::AdaBoost;
pub use dataset::{Dataset, Example};
pub use distance::Distance;
pub use eval::{accuracy, ConfusionMatrix};
pub use kmeans::KMeans;
pub use knn::NearestNeighbor;
pub use naive_bayes::GaussianNaiveBayes;
pub use online::OnlineLearner;

/// A class label (for FixSym synopses: the code of the fix that repaired the
/// failure; see `selfheal_faults::FixKind::code`).
pub type Label = usize;

/// A classifier trained on labelled feature vectors.
///
/// All synopsis models implement this trait; the FixSym engine programs
/// against it so synopses can be swapped (Figure 4 / Table 3 compare three
/// implementations).
pub trait Classifier {
    /// Fits the model to a dataset, replacing any previous state.
    fn fit(&mut self, data: &Dataset);

    /// Predicts the label of a feature vector.
    ///
    /// Models return a default label (0) when asked to predict before any
    /// training data has been seen; the FixSym engine never relies on that
    /// path because it bootstraps the synopsis with at least one example.
    fn predict(&self, features: &[f64]) -> Label;

    /// Predicts a label together with a confidence estimate in `[0, 1]`.
    ///
    /// Confidence estimates enable ranking fixes when combining multiple
    /// approaches (Section 5.2, "Confidence estimates and ranking").
    fn predict_with_confidence(&self, features: &[f64]) -> (Label, f64) {
        (self.predict(features), 0.5)
    }

    /// A deterministic proxy for training cost: the number of elementary
    /// model-fitting operations performed by the last call to
    /// [`Classifier::fit`] (e.g. stump evaluations for AdaBoost, distance
    /// computations for k-means).  Used by the Table 3 harness alongside
    /// wall-clock time so the reported cost ordering is hardware-independent.
    fn last_fit_cost(&self) -> u64 {
        0
    }
}
