//! Time-series forecasting for proactive healing.
//!
//! Section 5.3 of the paper: "an approach where failures are predicted in
//! advance and fixes applied proactively, can be more attractive.  Such
//! strategies need synopses that can forecast failures."  The proactive
//! controller in `selfheal-core` uses these forecasters to extrapolate a
//! degradation metric (e.g. response time under software aging) and apply a
//! fix *before* the SLO is violated.

/// A forecaster for a univariate series observed one value at a time.
pub trait Forecaster {
    /// Feeds the next observation.
    fn observe(&mut self, value: f64);

    /// Forecasts the value `horizon` steps after the last observation.
    /// Returns `None` until enough observations have been seen.
    fn forecast(&self, horizon: usize) -> Option<f64>;

    /// Number of observations seen so far.
    fn observations(&self) -> usize;
}

/// Holt's double exponential smoothing (level + trend).
#[derive(Debug, Clone)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
    count: usize,
}

impl HoltLinear {
    /// Creates a Holt forecaster with level smoothing `alpha` and trend
    /// smoothing `beta`, both in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if the smoothing factors are out of range.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        HoltLinear {
            alpha,
            beta,
            level: None,
            trend: 0.0,
            count: 0,
        }
    }

    /// Current estimated trend (change per step).
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Current estimated level.
    pub fn level(&self) -> Option<f64> {
        self.level
    }
}

impl Forecaster for HoltLinear {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        match self.level {
            None => {
                self.level = Some(value);
                self.trend = 0.0;
            }
            Some(level) => {
                let new_level = self.alpha * value + (1.0 - self.alpha) * (level + self.trend);
                self.trend = self.beta * (new_level - level) + (1.0 - self.beta) * self.trend;
                self.level = Some(new_level);
            }
        }
    }

    fn forecast(&self, horizon: usize) -> Option<f64> {
        self.level.map(|l| l + self.trend * horizon as f64)
    }

    fn observations(&self) -> usize {
        self.count
    }
}

/// Ordinary-least-squares linear trend over a sliding window of the most
/// recent observations.
#[derive(Debug, Clone)]
pub struct SlidingLinearTrend {
    window: usize,
    values: Vec<f64>,
    count: usize,
}

impl SlidingLinearTrend {
    /// Creates a forecaster fitting a line to the last `window` observations.
    ///
    /// # Panics
    /// Panics if `window < 2`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two observations");
        SlidingLinearTrend {
            window,
            values: Vec::new(),
            count: 0,
        }
    }

    /// Estimated slope (change per step) over the current window, or `None`
    /// until two observations are available.
    pub fn slope(&self) -> Option<f64> {
        self.fit().map(|(slope, _)| slope)
    }

    fn fit(&self) -> Option<(f64, f64)> {
        let n = self.values.len();
        if n < 2 {
            return None;
        }
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mean_x = xs.iter().sum::<f64>() / n as f64;
        let mean_y = self.values.iter().sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for (x, y) in xs.iter().zip(self.values.iter()) {
            num += (x - mean_x) * (y - mean_y);
            den += (x - mean_x) * (x - mean_x);
        }
        if den <= f64::EPSILON {
            return None;
        }
        let slope = num / den;
        let intercept = mean_y - slope * mean_x;
        Some((slope, intercept))
    }
}

impl Forecaster for SlidingLinearTrend {
    fn observe(&mut self, value: f64) {
        if self.values.len() == self.window {
            self.values.remove(0);
        }
        self.values.push(value);
        self.count += 1;
    }

    fn forecast(&self, horizon: usize) -> Option<f64> {
        let (slope, intercept) = self.fit()?;
        let x = (self.values.len() - 1 + horizon) as f64;
        Some(intercept + slope * x)
    }

    fn observations(&self) -> usize {
        self.count
    }
}

/// Predicts how many steps remain until the series crosses `threshold`
/// (from below), according to `forecaster`.  Returns `None` when no crossing
/// is forecast within `max_horizon` steps.
pub fn steps_until_threshold<F: Forecaster>(
    forecaster: &F,
    threshold: f64,
    max_horizon: usize,
) -> Option<usize> {
    for h in 1..=max_horizon {
        if let Some(v) = forecaster.forecast(h) {
            if v >= threshold {
                return Some(h);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holt_tracks_a_linear_ramp() {
        let mut h = HoltLinear::new(0.5, 0.5);
        assert!(h.forecast(1).is_none());
        for i in 0..50 {
            h.observe(10.0 + 2.0 * i as f64);
        }
        let f = h.forecast(5).unwrap();
        let expected = 10.0 + 2.0 * 54.0;
        assert!(
            (f - expected).abs() < 2.0,
            "forecast {f} vs expected {expected}"
        );
        assert!((h.trend() - 2.0).abs() < 0.2);
        assert_eq!(h.observations(), 50);
    }

    #[test]
    fn holt_on_constant_series_forecasts_the_constant() {
        let mut h = HoltLinear::new(0.3, 0.3);
        for _ in 0..30 {
            h.observe(42.0);
        }
        assert!((h.forecast(10).unwrap() - 42.0).abs() < 1e-9);
        assert!(h.trend().abs() < 1e-9);
    }

    #[test]
    fn sliding_trend_estimates_slope_and_forecasts() {
        let mut t = SlidingLinearTrend::new(10);
        assert!(t.forecast(1).is_none());
        for i in 0..20 {
            t.observe(5.0 + 3.0 * i as f64);
        }
        assert!((t.slope().unwrap() - 3.0).abs() < 1e-9);
        // Window holds observations 10..19 (values 35..62); one step ahead is 65.
        assert!((t.forecast(1).unwrap() - 65.0).abs() < 1e-9);
        assert_eq!(t.observations(), 20);
    }

    #[test]
    fn sliding_trend_on_flat_series_has_zero_slope() {
        let mut t = SlidingLinearTrend::new(5);
        for _ in 0..10 {
            t.observe(7.0);
        }
        assert!(t.slope().unwrap().abs() < 1e-12);
        assert!((t.forecast(100).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn steps_until_threshold_detects_upcoming_crossings() {
        let mut t = SlidingLinearTrend::new(10);
        for i in 0..10 {
            t.observe(i as f64); // slope 1, last value 9
        }
        assert_eq!(steps_until_threshold(&t, 12.0, 100), Some(3));
        assert_eq!(steps_until_threshold(&t, 1000.0, 10), None);
        let mut flat = SlidingLinearTrend::new(5);
        for _ in 0..5 {
            flat.observe(1.0);
        }
        assert_eq!(steps_until_threshold(&flat, 2.0, 50), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn holt_rejects_bad_alpha() {
        HoltLinear::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least two observations")]
    fn sliding_trend_rejects_tiny_window() {
        SlidingLinearTrend::new(1);
    }
}
