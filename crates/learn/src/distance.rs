//! Distance metrics over feature vectors.

use serde::{Deserialize, Serialize};

/// Distance metric used by the instance-based learners (nearest neighbor and
/// k-means).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Distance {
    /// Euclidean (L2) distance.
    #[default]
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
    /// Chebyshev (L∞) distance.
    Chebyshev,
}

impl Distance {
    /// Computes the distance between two vectors.
    ///
    /// # Panics
    /// Panics (in debug builds) if the vectors have different lengths.
    pub fn between(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(
            a.len(),
            b.len(),
            "distance between vectors of different lengths"
        );
        match self {
            Distance::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Distance::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Distance::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

/// Normalizes a feature vector with per-column `(mean, std_dev)` statistics
/// (z-score); columns with zero standard deviation are passed through
/// centred only.
pub fn zscore(features: &[f64], stats: &[(f64, f64)]) -> Vec<f64> {
    features
        .iter()
        .zip(stats)
        .map(|(v, (mean, std))| {
            if *std > f64::EPSILON {
                (v - mean) / std
            } else {
                v - mean
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        let d = Distance::Euclidean.between(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert_eq!(Distance::Manhattan.between(&[1.0, 2.0], &[4.0, 0.0]), 5.0);
        assert_eq!(Distance::Chebyshev.between(&[1.0, 2.0], &[4.0, 0.0]), 3.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let v = [1.5, -2.0, 7.0];
        for metric in [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Chebyshev,
        ] {
            assert_eq!(metric.between(&v, &v), 0.0);
        }
    }

    #[test]
    fn default_is_euclidean() {
        assert_eq!(Distance::default(), Distance::Euclidean);
    }

    #[test]
    fn zscore_normalizes_and_handles_constant_columns() {
        let stats = vec![(10.0, 2.0), (5.0, 0.0)];
        let z = zscore(&[14.0, 7.0], &stats);
        assert!((z[0] - 2.0).abs() < 1e-12);
        assert!((z[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_holds_for_euclidean() {
        let a = [0.0, 0.0];
        let b = [1.0, 2.0];
        let c = [3.0, 1.0];
        let ab = Distance::Euclidean.between(&a, &b);
        let bc = Distance::Euclidean.between(&b, &c);
        let ac = Distance::Euclidean.between(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }
}
