//! Labelled datasets of feature vectors.

use crate::Label;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One labelled example: a feature vector and its class label.
///
/// For FixSym, the features are the symptom vector of a failure (the values
/// of the attributes in the signature set Ω) and the label is the code of
/// the fix that repaired it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Feature values.
    pub features: Vec<f64>,
    /// Class label.
    pub label: Label,
}

impl Example {
    /// Creates an example.
    pub fn new(features: Vec<f64>, label: Label) -> Self {
        Example { features, label }
    }
}

/// A collection of labelled examples with a fixed feature width.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    width: usize,
    examples: Vec<Example>,
}

impl Dataset {
    /// Creates an empty dataset of feature width `width`.
    pub fn new(width: usize) -> Self {
        Dataset {
            width,
            examples: Vec::new(),
        }
    }

    /// Creates a dataset from examples.
    ///
    /// # Panics
    /// Panics if examples have inconsistent widths.
    pub fn from_examples(examples: Vec<Example>) -> Self {
        let width = examples.first().map(|e| e.features.len()).unwrap_or(0);
        let mut ds = Dataset {
            width,
            examples: Vec::new(),
        };
        for e in examples {
            ds.push(e);
        }
        ds
    }

    /// Feature width (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Adds an example.
    ///
    /// # Panics
    /// Panics if the feature width does not match (an empty dataset created
    /// with width 0 adopts the width of its first example).
    pub fn push(&mut self, example: Example) {
        if self.examples.is_empty() && self.width == 0 {
            self.width = example.features.len();
        }
        assert_eq!(
            example.features.len(),
            self.width,
            "example width {} does not match dataset width {}",
            example.features.len(),
            self.width
        );
        self.examples.push(example);
    }

    /// Borrow all examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Iterate over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], Label)> {
        self.examples
            .iter()
            .map(|e| (e.features.as_slice(), e.label))
    }

    /// The set of distinct labels present, sorted ascending.
    pub fn labels(&self) -> Vec<Label> {
        let mut labels: Vec<Label> = self.examples.iter().map(|e| e.label).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Number of examples with each label, as `(label, count)` sorted by
    /// label.
    pub fn label_counts(&self) -> Vec<(Label, usize)> {
        self.labels()
            .into_iter()
            .map(|l| (l, self.examples.iter().filter(|e| e.label == l).count()))
            .collect()
    }

    /// Per-column mean and standard deviation, used for z-score
    /// normalization.
    pub fn column_stats(&self) -> Vec<(f64, f64)> {
        let n = self.examples.len().max(1) as f64;
        (0..self.width)
            .map(|c| {
                let mean = self.examples.iter().map(|e| e.features[c]).sum::<f64>() / n;
                let var = self
                    .examples
                    .iter()
                    .map(|e| (e.features[c] - mean).powi(2))
                    .sum::<f64>()
                    / n;
                (mean, var.sqrt())
            })
            .collect()
    }

    /// Splits the dataset into a training set and a test set, shuffling with
    /// `rng`; `train_fraction` of the examples (rounded down, at least one
    /// when nonempty) go to the training set.
    pub fn split<R: Rng + ?Sized>(&self, train_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        let mut shuffled = self.examples.clone();
        shuffled.shuffle(rng);
        let train_len = ((shuffled.len() as f64) * train_fraction.clamp(0.0, 1.0)) as usize;
        let train_len = train_len.clamp(usize::from(!shuffled.is_empty()), shuffled.len());
        let test = shuffled.split_off(train_len);
        (
            Dataset {
                width: self.width,
                examples: shuffled,
            },
            Dataset {
                width: self.width,
                examples: test,
            },
        )
    }

    /// Returns a copy restricted to the given feature columns (in the given
    /// order).  Used by feature selection.
    pub fn project(&self, columns: &[usize]) -> Dataset {
        let examples = self
            .examples
            .iter()
            .map(|e| Example::new(columns.iter().map(|c| e.features[*c]).collect(), e.label))
            .collect();
        Dataset {
            width: columns.len(),
            examples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        Dataset::from_examples(vec![
            Example::new(vec![0.0, 1.0, 2.0], 0),
            Example::new(vec![1.0, 1.0, 0.0], 1),
            Example::new(vec![2.0, 1.0, 4.0], 0),
            Example::new(vec![3.0, 1.0, 2.0], 2),
        ])
    }

    #[test]
    fn construction_and_accessors() {
        let d = dataset();
        assert_eq!(d.width(), 3);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.labels(), vec![0, 1, 2]);
        assert_eq!(d.label_counts(), vec![(0, 2), (1, 1), (2, 1)]);
    }

    #[test]
    fn empty_dataset_adopts_first_example_width() {
        let mut d = Dataset::new(0);
        d.push(Example::new(vec![1.0, 2.0], 5));
        assert_eq!(d.width(), 2);
        assert_eq!(d.labels(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "does not match dataset width")]
    fn mismatched_width_is_rejected() {
        let mut d = dataset();
        d.push(Example::new(vec![1.0], 0));
    }

    #[test]
    fn column_stats_match_hand_computation() {
        let d = dataset();
        let stats = d.column_stats();
        assert!((stats[0].0 - 1.5).abs() < 1e-12);
        assert!((stats[1].0 - 1.0).abs() < 1e-12);
        assert!(stats[1].1.abs() < 1e-12, "constant column has zero std dev");
    }

    #[test]
    fn split_partitions_all_examples() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.split(0.5, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 2);
        assert_eq!(train.width(), 3);
        assert_eq!(test.width(), 3);
    }

    #[test]
    fn split_always_keeps_at_least_one_training_example() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let (train, _) = d.split(0.0, &mut rng);
        assert_eq!(train.len(), 1);
    }

    #[test]
    fn projection_reorders_columns() {
        let d = dataset();
        let p = d.project(&[2, 0]);
        assert_eq!(p.width(), 2);
        assert_eq!(p.examples()[0].features, vec![2.0, 0.0]);
        assert_eq!(p.examples()[0].label, 0);
    }

    #[test]
    fn iter_yields_feature_label_pairs() {
        let d = dataset();
        let collected: Vec<Label> = d.iter().map(|(_, l)| l).collect();
        assert_eq!(collected, vec![0, 1, 0, 2]);
    }
}
