//! Online (incremental) synopsis learning.
//!
//! Section 5.2: "Unless the synopses are kept up to date efficiently as new
//! data becomes available, accuracy can drop sharply in dynamic settings."
//! FixSym updates its synopsis after *every* attempted fix (Figure 3, line
//! 15), so the cost of an update matters: nearest neighbor absorbs a new
//! example in O(1), while an ensemble retrained from scratch pays its full
//! training cost on every update — the accuracy/running-time trade-off of
//! Table 3.
//!
//! [`OnlineLearner`] wraps any [`Classifier`] with an example buffer and a
//! configurable [`RetrainPolicy`], giving all models a uniform incremental
//! interface while preserving their very different update costs.

use crate::dataset::{Dataset, Example};
use crate::knn::NearestNeighbor;
use crate::{Classifier, Label};

/// When the wrapped model is refitted from the example buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainPolicy {
    /// Refit after every new example (what the FixSym loop does by default).
    EveryExample,
    /// Refit after every `n` new examples (cheaper, slightly stale synopsis).
    EveryN(usize),
    /// Never refit automatically; the caller decides when to call
    /// [`OnlineLearner::retrain`].
    Manual,
}

/// An incremental wrapper around a batch [`Classifier`].
#[derive(Debug, Clone)]
pub struct OnlineLearner<C: Classifier> {
    model: C,
    buffer: Dataset,
    policy: RetrainPolicy,
    pending: usize,
    updates: u64,
    retrains: u64,
    cumulative_fit_cost: u64,
}

impl<C: Classifier> OnlineLearner<C> {
    /// Wraps `model` with the given retraining policy.
    pub fn new(model: C, policy: RetrainPolicy) -> Self {
        OnlineLearner {
            model,
            buffer: Dataset::new(0),
            policy,
            pending: 0,
            updates: 0,
            retrains: 0,
            cumulative_fit_cost: 0,
        }
    }

    /// Adds a labelled example, retraining according to the policy.
    pub fn observe(&mut self, features: Vec<f64>, label: Label) {
        self.buffer.push(Example::new(features, label));
        self.updates += 1;
        self.pending += 1;
        let retrain = match self.policy {
            RetrainPolicy::EveryExample => true,
            RetrainPolicy::EveryN(n) => self.pending >= n.max(1),
            RetrainPolicy::Manual => false,
        };
        if retrain {
            self.retrain();
        }
    }

    /// Refits the wrapped model on the full buffer.
    pub fn retrain(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.model.fit(&self.buffer);
        self.cumulative_fit_cost += self.model.last_fit_cost();
        self.retrains += 1;
        self.pending = 0;
    }

    /// The wrapped model (read access).
    pub fn model(&self) -> &C {
        &self.model
    }

    /// All observed examples.
    pub fn buffer(&self) -> &Dataset {
        &self.buffer
    }

    /// Total observed examples.
    pub fn observed(&self) -> u64 {
        self.updates
    }

    /// How many times the wrapped model was refitted.
    pub fn retrains(&self) -> u64 {
        self.retrains
    }

    /// Sum of the wrapped model's `last_fit_cost` over all refits — the
    /// deterministic "time to generate" proxy reported alongside wall-clock
    /// in the Table 3 harness.
    pub fn cumulative_fit_cost(&self) -> u64 {
        self.cumulative_fit_cost
    }

    /// Predicts with the current (possibly slightly stale) model.
    pub fn predict(&self, features: &[f64]) -> Label {
        self.model.predict(features)
    }

    /// Predicts with a confidence estimate.
    pub fn predict_with_confidence(&self, features: &[f64]) -> (Label, f64) {
        self.model.predict_with_confidence(features)
    }
}

/// A natively incremental nearest-neighbor learner (no refits at all): the
/// cheapest possible online synopsis, used as the baseline in the online
/// learning ablation.
#[derive(Debug, Clone, Default)]
pub struct IncrementalNearestNeighbor {
    inner: NearestNeighbor,
    observed: u64,
}

impl IncrementalNearestNeighbor {
    /// Creates an empty incremental 1-NN learner.
    pub fn new() -> Self {
        IncrementalNearestNeighbor {
            inner: NearestNeighbor::new(),
            observed: 0,
        }
    }

    /// Adds one example in O(1).
    pub fn observe(&mut self, features: Vec<f64>, label: Label) {
        self.inner.add_example(Example::new(features, label));
        self.observed += 1;
    }

    /// Total observed examples.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Predicts the label of a feature vector.
    pub fn predict(&self, features: &[f64]) -> Label {
        self.inner.predict(features)
    }

    /// Predicts with a confidence estimate.
    pub fn predict_with_confidence(&self, features: &[f64]) -> (Label, f64) {
        self.inner.predict_with_confidence(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaboost::AdaBoost;
    use crate::kmeans::KMeans;

    #[test]
    fn every_example_policy_retrains_each_time() {
        let mut learner = OnlineLearner::new(KMeans::new(), RetrainPolicy::EveryExample);
        learner.observe(vec![0.0, 0.0], 0);
        learner.observe(vec![10.0, 10.0], 1);
        learner.observe(vec![0.1, 0.2], 0);
        assert_eq!(learner.observed(), 3);
        assert_eq!(learner.retrains(), 3);
        assert_eq!(learner.predict(&[0.0, 0.1]), 0);
        assert_eq!(learner.predict(&[9.9, 9.8]), 1);
    }

    #[test]
    fn every_n_policy_batches_retrains() {
        let mut learner = OnlineLearner::new(KMeans::new(), RetrainPolicy::EveryN(3));
        for i in 0..7 {
            learner.observe(vec![i as f64], usize::from(i >= 3));
        }
        assert_eq!(learner.retrains(), 2, "retrains at examples 3 and 6");
        assert_eq!(learner.buffer().len(), 7);
    }

    #[test]
    fn manual_policy_waits_for_explicit_retrain() {
        let mut learner = OnlineLearner::new(KMeans::new(), RetrainPolicy::Manual);
        learner.observe(vec![0.0], 0);
        learner.observe(vec![10.0], 1);
        assert_eq!(learner.retrains(), 0);
        // Stale model predicts the default label.
        assert_eq!(learner.predict(&[10.0]), 0);
        learner.retrain();
        assert_eq!(learner.retrains(), 1);
        assert_eq!(learner.predict(&[10.0]), 1);
    }

    #[test]
    fn cumulative_cost_grows_much_faster_for_adaboost_than_knn() {
        let mut ada = OnlineLearner::new(AdaBoost::new(20), RetrainPolicy::EveryExample);
        let mut knn = OnlineLearner::new(NearestNeighbor::new(), RetrainPolicy::EveryExample);
        for i in 0..30 {
            let features = vec![i as f64, (i * 7 % 5) as f64];
            let label = usize::from(i % 3 == 0);
            ada.observe(features.clone(), label);
            knn.observe(features, label);
        }
        assert!(
            ada.cumulative_fit_cost() > 10 * knn.cumulative_fit_cost(),
            "AdaBoost cumulative cost {} should dwarf kNN {}",
            ada.cumulative_fit_cost(),
            knn.cumulative_fit_cost()
        );
    }

    #[test]
    fn incremental_knn_is_always_up_to_date() {
        let mut learner = IncrementalNearestNeighbor::new();
        assert_eq!(learner.predict_with_confidence(&[0.0]), (0, 0.0));
        learner.observe(vec![0.0], 4);
        learner.observe(vec![10.0], 9);
        assert_eq!(learner.observed(), 2);
        assert_eq!(learner.predict(&[1.0]), 4);
        assert_eq!(learner.predict(&[9.0]), 9);
    }

    #[test]
    fn retrain_on_empty_buffer_is_a_no_op() {
        let mut learner = OnlineLearner::new(KMeans::new(), RetrainPolicy::Manual);
        learner.retrain();
        assert_eq!(learner.retrains(), 0);
    }
}
