//! AdaBoost ensemble synopsis.
//!
//! "Adaboost is an ensemble learning technique that can produce accurate
//! predictions by combining many simple and moderately inaccurate synopses
//! (or weak learners). ... The number 60 for Adaboost in Figure 4 and Table
//! 3 is the optimal value in our setting for Adaboost's single configuration
//! parameter, namely, the number of weak learners combined to generate the
//! final synopsis." (Section 5.2.)
//!
//! This is the multi-class SAMME variant of AdaBoost (Zhu et al.) over
//! [`DecisionStump`] weak learners, which reduces to the classic Freund &
//! Schapire algorithm for two classes.  Training cost scales with
//! `rounds × examples × features × distinct thresholds`, which is what makes
//! the ensemble synopsis one to two orders of magnitude more expensive to
//! generate than nearest neighbor or k-means (Table 3) while reaching higher
//! accuracy with fewer training samples (Figure 4).

use crate::dataset::Dataset;
use crate::stump::DecisionStump;
use crate::{Classifier, Label};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One boosting round: a weak learner and its vote weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedStump {
    /// The weak learner.
    pub stump: DecisionStump,
    /// The learner's vote weight (alpha).
    pub alpha: f64,
}

/// Multi-class AdaBoost (SAMME) over decision stumps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaBoost {
    rounds: usize,
    ensemble: Vec<WeightedStump>,
    classes: Vec<Label>,
    last_fit_cost: u64,
}

impl AdaBoost {
    /// Creates an AdaBoost synopsis with the paper's configuration of 60
    /// weak learners.
    pub fn paper_default() -> Self {
        Self::new(60)
    }

    /// Creates an AdaBoost synopsis with `rounds` weak learners.
    ///
    /// # Panics
    /// Panics if `rounds` is zero.
    pub fn new(rounds: usize) -> Self {
        assert!(rounds > 0, "AdaBoost needs at least one round");
        AdaBoost {
            rounds,
            ensemble: Vec::new(),
            classes: Vec::new(),
            last_fit_cost: 0,
        }
    }

    /// Number of boosting rounds this model is configured for.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The fitted ensemble (empty before the first [`Classifier::fit`]).
    pub fn ensemble(&self) -> &[WeightedStump] {
        &self.ensemble
    }

    /// Per-class weighted vote scores for a feature vector, normalized to
    /// sum to 1.0 (empty map before fitting).
    ///
    /// Returned as a [`BTreeMap`] so iteration (and the normalization sum,
    /// whose floating-point result depends on summation order) is always in
    /// ascending label order — callers ranking these scores stay
    /// deterministic without re-sorting.
    pub fn class_scores(&self, features: &[f64]) -> BTreeMap<Label, f64> {
        let mut scores: BTreeMap<Label, f64> = BTreeMap::new();
        for member in &self.ensemble {
            *scores.entry(member.stump.predict(features)).or_insert(0.0) += member.alpha;
        }
        let total: f64 = scores.values().sum();
        if total > 0.0 {
            for v in scores.values_mut() {
                *v /= total;
            }
        }
        scores
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, data: &Dataset) {
        self.ensemble.clear();
        self.classes = data.labels();
        self.last_fit_cost = 0;
        if data.is_empty() {
            return;
        }
        let n = data.len();
        let k = self.classes.len().max(2) as f64;
        let mut weights = vec![1.0 / n as f64; n];

        for _ in 0..self.rounds {
            let (stump, error, evals) = DecisionStump::fit_weighted(data, &weights);
            self.last_fit_cost += evals;

            // SAMME vote weight; guard the degenerate cases.
            let error = error.clamp(1e-10, 1.0 - 1e-10);
            let alpha = ((1.0 - error) / error).ln() + (k - 1.0).ln();
            if alpha <= 0.0 {
                // Weak learner no better than chance for K classes: stop.
                if self.ensemble.is_empty() {
                    self.ensemble.push(WeightedStump { stump, alpha: 1.0 });
                }
                break;
            }

            // Reweight: misclassified examples get boosted.
            let mut total = 0.0;
            for (i, example) in data.examples().iter().enumerate() {
                let predicted = stump.predict(&example.features);
                if predicted != example.label {
                    weights[i] *= alpha.exp().min(1e12);
                }
                total += weights[i];
            }
            if total > 0.0 {
                for w in &mut weights {
                    *w /= total;
                }
            }

            self.ensemble.push(WeightedStump { stump, alpha });

            // Perfect separation: additional rounds would just duplicate the
            // same stump with saturated weights.
            if error <= 1e-9 {
                break;
            }
        }
    }

    fn predict(&self, features: &[f64]) -> Label {
        self.predict_with_confidence(features).0
    }

    fn predict_with_confidence(&self, features: &[f64]) -> (Label, f64) {
        if self.ensemble.is_empty() {
            return (0, 0.0);
        }
        let scores = self.class_scores(features);
        let (label, score) = scores
            .into_iter()
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite scores")
                    .then(b.0.cmp(&a.0))
            })
            .expect("nonempty ensemble yields at least one score");
        (label, score.clamp(0.0, 1.0))
    }

    fn last_fit_cost(&self) -> u64 {
        self.last_fit_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Example;
    use crate::eval::accuracy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// A dataset with a diagonal decision boundary (`x + y > 1`): a single
    /// axis-aligned stump can only reach ~75% accuracy, but an ensemble of
    /// stumps approximates the diagonal well.
    fn diagonal_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            let label = usize::from(x + y > 1.0);
            examples.push(Example::new(vec![x, y], label));
        }
        Dataset::from_examples(examples)
    }

    fn three_class_blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)];
        let mut examples = Vec::new();
        for (label, (cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                let x = cx + rng.gen_range(-1.0..1.0);
                let y = cy + rng.gen_range(-1.0..1.0);
                examples.push(Example::new(vec![x, y], label));
            }
        }
        Dataset::from_examples(examples)
    }

    #[test]
    fn boosting_beats_a_single_stump_on_a_diagonal_boundary() {
        let train = diagonal_data(300, 1);
        let test = diagonal_data(200, 2);

        let mut single = AdaBoost::new(1);
        single.fit(&train);
        let single_acc = accuracy(&single, &test);

        let mut boosted = AdaBoost::new(60);
        boosted.fit(&train);
        let boosted_acc = accuracy(&boosted, &test);

        assert!(
            boosted_acc > single_acc + 0.1,
            "boosted {boosted_acc} should clearly beat single stump {single_acc}"
        );
        assert!(boosted_acc > 0.85, "boosted accuracy {boosted_acc}");
    }

    #[test]
    fn multiclass_blobs_are_classified_accurately() {
        let train = three_class_blobs(40, 3);
        let test = three_class_blobs(40, 4);
        let mut model = AdaBoost::paper_default();
        model.fit(&train);
        let acc = accuracy(&model, &test);
        assert!(acc > 0.9, "three-class accuracy {acc}");
        assert_eq!(model.rounds(), 60);
    }

    #[test]
    fn confidence_is_higher_far_from_the_boundary() {
        let train = three_class_blobs(40, 5);
        let mut model = AdaBoost::new(30);
        model.fit(&train);
        let (_, deep) = model.predict_with_confidence(&[0.0, 0.0]);
        let (_, boundary) = model.predict_with_confidence(&[2.5, 2.5]);
        assert!(deep >= boundary, "deep {deep} vs boundary {boundary}");
    }

    #[test]
    fn fit_cost_grows_with_rounds() {
        let train = diagonal_data(200, 6);
        let mut small = AdaBoost::new(5);
        small.fit(&train);
        let mut large = AdaBoost::new(40);
        large.fit(&train);
        assert!(Classifier::last_fit_cost(&large) > Classifier::last_fit_cost(&small));
        assert!(Classifier::last_fit_cost(&small) > 0);
    }

    #[test]
    fn separable_data_terminates_early_without_panic() {
        let train = Dataset::from_examples(vec![
            Example::new(vec![0.0], 0),
            Example::new(vec![1.0], 0),
            Example::new(vec![10.0], 1),
            Example::new(vec![11.0], 1),
        ]);
        let mut model = AdaBoost::new(60);
        model.fit(&train);
        assert!(model.ensemble().len() < 60, "early stop on separable data");
        assert_eq!(model.predict(&[0.5]), 0);
        assert_eq!(model.predict(&[10.5]), 1);
    }

    #[test]
    fn unfitted_model_returns_default_with_zero_confidence() {
        let model = AdaBoost::new(10);
        assert_eq!(model.predict_with_confidence(&[1.0, 2.0]), (0, 0.0));
    }

    #[test]
    fn class_scores_sum_to_one_after_fit() {
        let train = three_class_blobs(20, 7);
        let mut model = AdaBoost::new(20);
        model.fit(&train);
        let scores = model.class_scores(&[5.0, 5.0]);
        let total: f64 = scores.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    /// Regression test for an iteration-order leak: `class_scores` used to
    /// return a `HashMap`, so the normalization sum (floating-point, hence
    /// order-sensitive) and any caller ranking tied scores depended on the
    /// map's per-instance random iteration order.  Two identically fitted
    /// models must now produce bitwise-identical, label-ascending scores.
    #[test]
    fn class_scores_are_label_ordered_and_bitwise_deterministic() {
        let train = three_class_blobs(20, 7);
        let mut a = AdaBoost::new(20);
        let mut b = AdaBoost::new(20);
        a.fit(&train);
        b.fit(&train);
        for probe in [[5.0, 5.0], [0.0, 0.0], [10.0, 0.0]] {
            let sa: Vec<(Label, f64)> = a.class_scores(&probe).into_iter().collect();
            let sb: Vec<(Label, f64)> = b.class_scores(&probe).into_iter().collect();
            assert_eq!(sa, sb, "identically fitted models must score identically");
            assert!(
                sa.windows(2).all(|w| w[0].0 < w[1].0),
                "scores must iterate in ascending label order"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_is_rejected() {
        AdaBoost::new(0);
    }
}
