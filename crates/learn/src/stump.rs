//! Decision stumps — the weak learners combined by AdaBoost.
//!
//! A stump is a one-level decision tree: it tests a single feature against a
//! threshold and predicts one label on each side.  Individually a stump is a
//! "simple and moderately inaccurate synopsis" (the paper's phrase for a
//! weak learner); AdaBoost combines many of them into an accurate ensemble.

use crate::dataset::Dataset;
use crate::Label;
use serde::{Deserialize, Serialize};

/// A one-feature threshold classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionStump {
    /// Index of the feature tested.
    pub feature: usize,
    /// Threshold the feature is compared against.
    pub threshold: f64,
    /// Label predicted when `features[feature] <= threshold`.
    pub below: Label,
    /// Label predicted when `features[feature] > threshold`.
    pub above: Label,
}

impl DecisionStump {
    /// Predicts the label of a feature vector.
    pub fn predict(&self, features: &[f64]) -> Label {
        if features[self.feature] <= self.threshold {
            self.below
        } else {
            self.above
        }
    }

    /// Fits the stump that minimizes weighted classification error on
    /// `data`, where `weights[i]` is the weight of example `i` (weights need
    /// not be normalized).  Returns the stump, its weighted error, and the
    /// number of candidate (feature, threshold) evaluations performed — the
    /// unit of the deterministic training-cost model used for Table 3.
    ///
    /// Candidate thresholds are the midpoints between consecutive distinct
    /// sorted values of each feature (plus one threshold below the minimum),
    /// which is the standard exhaustive stump search.
    ///
    /// # Panics
    /// Panics if `data` is empty or `weights.len() != data.len()`.
    pub fn fit_weighted(data: &Dataset, weights: &[f64]) -> (DecisionStump, f64, u64) {
        assert!(!data.is_empty(), "cannot fit a stump on an empty dataset");
        assert_eq!(weights.len(), data.len(), "one weight per example required");

        let labels = data.labels();
        let total_weight: f64 = weights.iter().sum();
        let mut evaluations = 0u64;
        let mut best: Option<(DecisionStump, f64)> = None;

        for feature in 0..data.width() {
            // Sort example indices by this feature's value.
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.sort_by(|a, b| {
                data.examples()[*a].features[feature]
                    .partial_cmp(&data.examples()[*b].features[feature])
                    .expect("finite feature values")
            });

            // Candidate thresholds: below the minimum, then midpoints.
            let mut thresholds = Vec::with_capacity(data.len());
            let first = data.examples()[order[0]].features[feature];
            thresholds.push(first - 1.0);
            for w in order.windows(2) {
                let a = data.examples()[w[0]].features[feature];
                let b = data.examples()[w[1]].features[feature];
                if (b - a).abs() > f64::EPSILON {
                    thresholds.push((a + b) / 2.0);
                }
            }

            for threshold in thresholds {
                // For this split, pick the best label on each side by
                // weighted majority.
                let mut below_weight: Vec<f64> = vec![0.0; labels.len()];
                let mut above_weight: Vec<f64> = vec![0.0; labels.len()];
                for (i, example) in data.examples().iter().enumerate() {
                    let label_idx = labels
                        .iter()
                        .position(|l| *l == example.label)
                        .expect("label present");
                    if example.features[feature] <= threshold {
                        below_weight[label_idx] += weights[i];
                    } else {
                        above_weight[label_idx] += weights[i];
                    }
                }
                evaluations += data.len() as u64;

                let best_below = argmax(&below_weight);
                let best_above = argmax(&above_weight);
                let correct = below_weight[best_below] + above_weight[best_above];
                let error = if total_weight > 0.0 {
                    1.0 - correct / total_weight
                } else {
                    0.5
                };

                let stump = DecisionStump {
                    feature,
                    threshold,
                    below: labels[best_below],
                    above: labels[best_above],
                };
                if best.as_ref().map(|(_, e)| error < *e).unwrap_or(true) {
                    best = Some((stump, error));
                }
            }
        }

        let (stump, error) = best.expect("at least one candidate stump");
        (stump, error.max(0.0), evaluations)
    }
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Example;

    fn separable_data() -> Dataset {
        Dataset::from_examples(vec![
            Example::new(vec![1.0, 50.0], 0),
            Example::new(vec![2.0, 60.0], 0),
            Example::new(vec![3.0, 40.0], 0),
            Example::new(vec![8.0, 55.0], 1),
            Example::new(vec![9.0, 45.0], 1),
            Example::new(vec![10.0, 65.0], 1),
        ])
    }

    #[test]
    fn stump_finds_the_separating_feature() {
        let data = separable_data();
        let weights = vec![1.0; data.len()];
        let (stump, error, evals) = DecisionStump::fit_weighted(&data, &weights);
        assert_eq!(stump.feature, 0, "feature 0 separates the classes");
        assert!(
            error < 1e-9,
            "separable data should give zero error, got {error}"
        );
        assert!(evals > 0);
        for (features, label) in data.iter() {
            assert_eq!(stump.predict(features), label);
        }
    }

    #[test]
    fn weights_steer_the_stump() {
        // Feature 0 separates classes except for one heavily weighted outlier
        // that only feature 1 classifies correctly.
        let data = Dataset::from_examples(vec![
            Example::new(vec![0.0, 0.0], 0),
            Example::new(vec![1.0, 0.0], 0),
            Example::new(vec![10.0, 0.0], 1),
            Example::new(vec![11.0, 0.0], 1),
            // Outlier: low feature 0 but label 1, separable on feature 1.
            Example::new(vec![0.5, 10.0], 1),
        ]);
        let uniform = vec![1.0; data.len()];
        let (stump_uniform, _, _) = DecisionStump::fit_weighted(&data, &uniform);
        assert_eq!(stump_uniform.feature, 0);

        let mut outlier_heavy = vec![0.1; data.len()];
        outlier_heavy[4] = 10.0;
        let (stump_weighted, _, _) = DecisionStump::fit_weighted(&data, &outlier_heavy);
        // With the outlier dominating, the stump must classify it correctly.
        assert_eq!(stump_weighted.predict(&[0.5, 10.0]), 1);
    }

    #[test]
    fn single_class_data_yields_zero_error() {
        let data =
            Dataset::from_examples(vec![Example::new(vec![1.0], 3), Example::new(vec![2.0], 3)]);
        let (stump, error, _) = DecisionStump::fit_weighted(&data, &[1.0, 1.0]);
        assert_eq!(stump.below, 3);
        assert_eq!(stump.above, 3);
        assert!(error.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_is_rejected() {
        DecisionStump::fit_weighted(&Dataset::new(2), &[]);
    }

    #[test]
    #[should_panic(expected = "one weight per example")]
    fn weight_length_mismatch_is_rejected() {
        let data = separable_data();
        DecisionStump::fit_weighted(&data, &[1.0, 2.0]);
    }
}
