//! Gaussian naive Bayes classifier.
//!
//! The paper's correlation-analysis diagnosis builds probabilistic models of
//! the relationship between metrics and a failure indicator ("e.g., by
//! building a Bayesian network as in \[10\]"), and Section 5.2 highlights that
//! "synopses that give confidence estimates naturally with predicted values
//! (e.g., Bayesian networks) are very useful" for ranking fixes.  A Gaussian
//! naive Bayes model is the simplest member of that family: it assumes the
//! metrics are conditionally independent given the class, which is the same
//! structural assumption as a two-layer Bayesian network with the class as
//! the single parent.

use crate::dataset::Dataset;
use crate::{Classifier, Label};
use serde::{Deserialize, Serialize};

/// Per-class Gaussian parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassModel {
    label: Label,
    prior: f64,
    means: Vec<f64>,
    variances: Vec<f64>,
}

/// Gaussian naive Bayes classifier with Laplace-smoothed priors and a
/// variance floor for numerically stable likelihoods.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    classes: Vec<ClassModel>,
    variance_floor: f64,
    last_fit_cost: u64,
}

impl GaussianNaiveBayes {
    /// Creates an untrained model.
    pub fn new() -> Self {
        GaussianNaiveBayes {
            classes: Vec::new(),
            variance_floor: 1e-6,
            last_fit_cost: 0,
        }
    }

    /// Returns the per-class posterior probabilities for a feature vector,
    /// as `(label, probability)` pairs summing to 1.0 (empty before fit).
    pub fn posteriors(&self, features: &[f64]) -> Vec<(Label, f64)> {
        if self.classes.is_empty() {
            return Vec::new();
        }
        // Work in log space then normalize with the log-sum-exp trick.
        let log_posteriors: Vec<(Label, f64)> = self
            .classes
            .iter()
            .map(|c| (c.label, c.prior.ln() + self.log_likelihood(c, features)))
            .collect();
        let max = log_posteriors
            .iter()
            .map(|(_, lp)| *lp)
            .fold(f64::NEG_INFINITY, f64::max);
        let unnormalized: Vec<(Label, f64)> = log_posteriors
            .into_iter()
            .map(|(l, lp)| (l, (lp - max).exp()))
            .collect();
        let total: f64 = unnormalized.iter().map(|(_, p)| p).sum();
        unnormalized
            .into_iter()
            .map(|(l, p)| (l, if total > 0.0 { p / total } else { 0.0 }))
            .collect()
    }

    fn log_likelihood(&self, class: &ClassModel, features: &[f64]) -> f64 {
        features
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let mean = class.means[i];
                let var = class.variances[i].max(self.variance_floor);
                -0.5 * ((x - mean).powi(2) / var + var.ln() + (2.0 * std::f64::consts::PI).ln())
            })
            .sum()
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, data: &Dataset) {
        self.classes.clear();
        self.last_fit_cost = 0;
        if data.is_empty() {
            return;
        }
        let n = data.len() as f64;
        let labels = data.labels();
        let k = labels.len() as f64;
        for label in labels {
            let members: Vec<&[f64]> = data
                .iter()
                .filter(|(_, l)| *l == label)
                .map(|(f, _)| f)
                .collect();
            let m = members.len() as f64;
            let mut means = vec![0.0; data.width()];
            for features in &members {
                for (acc, v) in means.iter_mut().zip(*features) {
                    *acc += v;
                }
            }
            for mean in &mut means {
                *mean /= m;
            }
            let mut variances = vec![0.0; data.width()];
            for features in &members {
                for (i, v) in features.iter().enumerate() {
                    variances[i] += (v - means[i]).powi(2);
                }
            }
            for var in &mut variances {
                *var /= m;
            }
            self.last_fit_cost += members.len() as u64 * data.width() as u64;
            self.classes.push(ClassModel {
                label,
                // Laplace-smoothed prior.
                prior: (m + 1.0) / (n + k),
                means,
                variances,
            });
        }
    }

    fn predict(&self, features: &[f64]) -> Label {
        self.predict_with_confidence(features).0
    }

    fn predict_with_confidence(&self, features: &[f64]) -> (Label, f64) {
        let posteriors = self.posteriors(features);
        posteriors
            .into_iter()
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite posterior")
                    .then(b.0.cmp(&a.0))
            })
            .unwrap_or((0, 0.0))
    }

    fn last_fit_cost(&self) -> u64 {
        self.last_fit_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Example;
    use crate::eval::accuracy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn gaussian_blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples = Vec::new();
        for _ in 0..n_per_class {
            examples.push(Example::new(
                vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
                0,
            ));
            examples.push(Example::new(
                vec![
                    6.0 + rng.gen_range(-1.0..1.0),
                    6.0 + rng.gen_range(-1.0..1.0),
                ],
                1,
            ));
        }
        Dataset::from_examples(examples)
    }

    #[test]
    fn separable_gaussians_are_classified_correctly() {
        let train = gaussian_blobs(100, 1);
        let test = gaussian_blobs(50, 2);
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&train);
        assert!(accuracy(&nb, &test) > 0.98);
    }

    #[test]
    fn posteriors_sum_to_one_and_favor_the_right_class() {
        let train = gaussian_blobs(100, 3);
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&train);
        let posteriors = nb.posteriors(&[0.0, 0.0]);
        let total: f64 = posteriors.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let class0 = posteriors.iter().find(|(l, _)| *l == 0).unwrap().1;
        assert!(class0 > 0.99);
    }

    #[test]
    fn confidence_drops_near_the_decision_boundary() {
        let train = gaussian_blobs(100, 4);
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&train);
        let (_, deep) = nb.predict_with_confidence(&[0.0, 0.0]);
        let (_, boundary) = nb.predict_with_confidence(&[3.0, 3.0]);
        assert!(deep > boundary);
    }

    #[test]
    fn constant_features_do_not_produce_nan() {
        let train = Dataset::from_examples(vec![
            Example::new(vec![1.0, 5.0], 0),
            Example::new(vec![1.0, 6.0], 0),
            Example::new(vec![1.0, 50.0], 1),
            Example::new(vec![1.0, 52.0], 1),
        ]);
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&train);
        let (label, conf) = nb.predict_with_confidence(&[1.0, 51.0]);
        assert_eq!(label, 1);
        assert!(conf.is_finite());
    }

    #[test]
    fn unfitted_model_returns_defaults() {
        let nb = GaussianNaiveBayes::new();
        assert!(nb.posteriors(&[1.0]).is_empty());
        assert_eq!(nb.predict_with_confidence(&[1.0]), (0, 0.0));
    }

    #[test]
    fn fit_cost_reflects_dataset_size() {
        let train = gaussian_blobs(50, 5);
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&train);
        assert_eq!(
            Classifier::last_fit_cost(&nb),
            (train.len() * train.width()) as u64
        );
    }
}
