//! Nearest-neighbor synopsis.
//!
//! "Nearest neighbor is a simple machine-learning algorithm that maps a new
//! failure data point *f* to the data point *f′* that is closest to *f*
//! among all failure data points observed so far.  The fix recommended for
//! *f* is the fix that worked for *f′*." (Section 5.2 of the paper.)
//!
//! The implementation generalizes to k-NN with majority voting (k = 1 by
//! default, matching the paper) and supports O(1) incremental insertion, so
//! updating the synopsis after each fixed failure is cheap — which is why
//! Table 3 reports its time-to-generate as low.

use crate::dataset::{Dataset, Example};
use crate::distance::Distance;
use crate::{Classifier, Label};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// k-nearest-neighbor classifier (k = 1 reproduces the paper's synopsis).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NearestNeighbor {
    k: usize,
    metric: Distance,
    examples: Vec<Example>,
    last_fit_cost: u64,
}

impl NearestNeighbor {
    /// Creates a 1-nearest-neighbor classifier with Euclidean distance.
    pub fn new() -> Self {
        Self::with_k(1)
    }

    /// Creates a k-nearest-neighbor classifier with Euclidean distance.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn with_k(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        NearestNeighbor {
            k,
            metric: Distance::Euclidean,
            examples: Vec::new(),
            last_fit_cost: 0,
        }
    }

    /// Sets the distance metric.
    pub fn with_metric(mut self, metric: Distance) -> Self {
        self.metric = metric;
        self
    }

    /// Number of stored examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if no examples have been stored yet.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Adds one example incrementally (the online update used by FixSym).
    pub fn add_example(&mut self, example: Example) {
        self.examples.push(example);
    }

    /// Returns the `k` nearest stored examples to `features`, closest first,
    /// as `(distance, label)` pairs.
    pub fn neighbors(&self, features: &[f64]) -> Vec<(f64, Label)> {
        let mut dists: Vec<(f64, Label)> = self
            .examples
            .iter()
            .map(|e| (self.metric.between(&e.features, features), e.label))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        dists.truncate(self.k);
        dists
    }
}

impl Default for NearestNeighbor {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for NearestNeighbor {
    fn fit(&mut self, data: &Dataset) {
        self.examples = data.examples().to_vec();
        // "Fitting" a kNN model is just storing the data.
        self.last_fit_cost = data.len() as u64;
    }

    fn predict(&self, features: &[f64]) -> Label {
        self.predict_with_confidence(features).0
    }

    fn predict_with_confidence(&self, features: &[f64]) -> (Label, f64) {
        if self.examples.is_empty() {
            return (0, 0.0);
        }
        let neighbors = self.neighbors(features);
        let mut votes: BTreeMap<Label, usize> = BTreeMap::new();
        for (_, label) in &neighbors {
            *votes.entry(*label).or_insert(0) += 1;
        }
        let (label, count) = votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("at least one neighbor");
        (label, count as f64 / neighbors.len() as f64)
    }

    fn last_fit_cost(&self) -> u64 {
        self.last_fit_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data() -> Dataset {
        // Two well-separated clusters: label 0 near the origin, label 1 near (10, 10).
        Dataset::from_examples(vec![
            Example::new(vec![0.0, 0.1], 0),
            Example::new(vec![0.2, 0.0], 0),
            Example::new(vec![0.1, 0.2], 0),
            Example::new(vec![10.0, 10.1], 1),
            Example::new(vec![10.2, 9.9], 1),
            Example::new(vec![9.9, 10.0], 1),
        ])
    }

    #[test]
    fn one_nn_recovers_cluster_labels() {
        let mut nn = NearestNeighbor::new();
        nn.fit(&training_data());
        assert_eq!(nn.predict(&[0.05, 0.05]), 0);
        assert_eq!(nn.predict(&[9.5, 10.5]), 1);
    }

    #[test]
    fn knn_majority_vote_and_confidence() {
        let mut nn = NearestNeighbor::with_k(3);
        nn.fit(&training_data());
        let (label, confidence) = nn.predict_with_confidence(&[0.0, 0.0]);
        assert_eq!(label, 0);
        assert_eq!(confidence, 1.0);
        // A point between the clusters but closer to cluster 1.
        let (label, confidence) = nn.predict_with_confidence(&[7.0, 7.0]);
        assert_eq!(label, 1);
        assert!(confidence >= 2.0 / 3.0);
    }

    #[test]
    fn incremental_updates_change_predictions() {
        let mut nn = NearestNeighbor::new();
        assert_eq!(nn.predict_with_confidence(&[1.0, 1.0]), (0, 0.0));
        nn.add_example(Example::new(vec![1.0, 1.0], 7));
        assert_eq!(nn.predict(&[1.1, 0.9]), 7);
        assert_eq!(nn.len(), 1);
        nn.add_example(Example::new(vec![5.0, 5.0], 3));
        assert_eq!(nn.predict(&[4.9, 5.2]), 3);
    }

    #[test]
    fn neighbors_are_sorted_by_distance() {
        let mut nn = NearestNeighbor::with_k(3);
        nn.fit(&training_data());
        let neighbors = nn.neighbors(&[0.0, 0.0]);
        assert_eq!(neighbors.len(), 3);
        assert!(neighbors[0].0 <= neighbors[1].0);
        assert!(neighbors[1].0 <= neighbors[2].0);
    }

    #[test]
    fn exact_training_point_is_its_own_neighbor() {
        let mut nn = NearestNeighbor::new();
        let data = training_data();
        nn.fit(&data);
        for (features, label) in data.iter() {
            assert_eq!(nn.predict(features), label);
        }
    }

    #[test]
    fn fit_cost_equals_dataset_size() {
        let mut nn = NearestNeighbor::new();
        nn.fit(&training_data());
        assert_eq!(Classifier::last_fit_cost(&nn), 6);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_is_rejected() {
        NearestNeighbor::with_k(0);
    }
}
