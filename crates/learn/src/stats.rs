//! Statistical tests and association measures.
//!
//! * [`pearson`] — the correlation coefficient used by the
//!   correlation-analysis diagnosis to find attributes "correlated strongly
//!   with (or predictive of) a failure-indicator attribute" (Section 4.3.2).
//! * [`chi_square_statistic`] / [`chi_square_test`] — the χ² goodness-of-fit
//!   test the anomaly detector uses to decide whether the current window's
//!   behaviour deviates from the baseline (Example 2: "Deviation can be
//!   detected, e.g., using the χ² statistical test").
//! * [`point_biserial`] — correlation between a continuous metric and a
//!   binary failure indicator (a special case of Pearson used when `Y` is
//!   the SLO-violation flag).

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns 0.0 when either sample has zero variance or fewer than two
/// observations (no linear association can be estimated).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal-length samples");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mean_x = x.iter().sum::<f64>() / n as f64;
    let mean_y = y.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = x[i] - mean_x;
        let dy = y[i] - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= f64::EPSILON || var_y <= f64::EPSILON {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Point-biserial correlation between a continuous sample `x` and a binary
/// indicator `y` (`false`/`true`).  Equivalent to Pearson on the 0/1
/// encoding; provided for readability at call sites.
pub fn point_biserial(x: &[f64], y: &[bool]) -> f64 {
    let encoded: Vec<f64> = y.iter().map(|b| if *b { 1.0 } else { 0.0 }).collect();
    pearson(x, &encoded)
}

/// χ² goodness-of-fit statistic of `observed` counts against `expected`
/// counts.
///
/// Categories with nonpositive expected count are skipped (they carry no
/// information).  Both slices must have the same length.
pub fn chi_square_statistic(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "chi-square requires equal-length inputs"
    );
    observed
        .iter()
        .zip(expected)
        .filter(|(_, e)| **e > 0.0)
        .map(|(o, e)| (o - e) * (o - e) / e)
        .sum()
}

/// Approximate upper critical value of the χ² distribution with `dof`
/// degrees of freedom at significance `alpha` (supported: 0.05 and 0.01),
/// using the Wilson–Hilferty cube-root normal approximation.
pub fn chi_square_critical(dof: usize, alpha: f64) -> f64 {
    if dof == 0 {
        return 0.0;
    }
    // Standard normal quantile for the supported significance levels.
    let z = if alpha <= 0.01 {
        2.326_347_87
    } else {
        1.644_853_63
    };
    let k = dof as f64;
    let term = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * term.powi(3)
}

/// χ² goodness-of-fit test: returns `true` when the observed counts deviate
/// significantly (at level `alpha`) from the expected counts.
///
/// Degrees of freedom are `categories - 1` where only categories with a
/// positive expected count are counted.
pub fn chi_square_test(observed: &[f64], expected: &[f64], alpha: f64) -> bool {
    let dof = expected
        .iter()
        .filter(|e| **e > 0.0)
        .count()
        .saturating_sub(1);
    if dof == 0 {
        return false;
    }
    chi_square_statistic(observed, expected) > chi_square_critical(dof, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_detects_perfect_linear_relationships() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y_pos: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let y_neg: Vec<f64> = x.iter().map(|v| -3.0 * v).collect();
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_zero_for_constant_or_tiny_samples() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn pearson_near_zero_for_independent_data() {
        // A fixed pseudo-random-ish pattern with no linear trend.
        let x: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| ((i * 53 + 7) % 23) as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.3);
    }

    #[test]
    fn point_biserial_finds_the_discriminating_metric() {
        // Metric is high exactly when the failure flag is set.
        let x = [1.0, 1.2, 0.9, 10.0, 11.0, 10.5];
        let y = [false, false, false, true, true, true];
        assert!(point_biserial(&x, &y) > 0.95);
        let unrelated = [5.0, 5.1, 4.9, 5.0, 5.1, 4.9];
        assert!(point_biserial(&unrelated, &y).abs() < 0.3);
    }

    #[test]
    fn chi_square_statistic_matches_hand_computation() {
        let observed = [50.0, 30.0, 20.0];
        let expected = [40.0, 40.0, 20.0];
        // (10^2/40) + (10^2/40) + 0 = 5.0
        assert!((chi_square_statistic(&observed, &expected) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_critical_values_are_close_to_tables() {
        // Textbook values: χ²(0.05, 3) ≈ 7.815, χ²(0.05, 10) ≈ 18.307,
        // χ²(0.01, 5) ≈ 15.086.
        assert!((chi_square_critical(3, 0.05) - 7.815).abs() < 0.15);
        assert!((chi_square_critical(10, 0.05) - 18.307).abs() < 0.25);
        assert!((chi_square_critical(5, 0.01) - 15.086).abs() < 0.3);
    }

    #[test]
    fn chi_square_test_flags_large_deviations_only() {
        let expected = [100.0, 100.0, 100.0, 100.0];
        let small_dev = [105.0, 95.0, 102.0, 98.0];
        let large_dev = [180.0, 20.0, 150.0, 50.0];
        assert!(!chi_square_test(&small_dev, &expected, 0.05));
        assert!(chi_square_test(&large_dev, &expected, 0.05));
    }

    #[test]
    fn chi_square_test_ignores_zero_expected_categories() {
        let expected = [0.0, 0.0];
        let observed = [10.0, 0.0];
        assert!(!chi_square_test(&observed, &expected, 0.05));
        assert_eq!(chi_square_statistic(&observed, &expected), 0.0);
    }
}
