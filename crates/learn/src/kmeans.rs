//! K-means clustering synopsis.
//!
//! The paper's description (Section 5.2): "K-means clustering works by
//! partitioning the failure data points collected so far into clusters based
//! on the successful fix found for each point.  A representative data point
//! is computed for each cluster, e.g., the mean of all points in the
//! cluster.  Each new failure data point *f* is mapped to the cluster whose
//! representative point is closest to *f*, and the corresponding fix is
//! recommended for *f*.  The clustering is redone after each failure is
//! fixed successfully."
//!
//! Two variants are provided:
//!
//! * [`KMeans`] in *label-partition* mode (the default, matching the paper's
//!   wording): one cluster per observed label whose representative is the
//!   mean of that label's points.  This is effectively a nearest-centroid
//!   classifier; its accuracy plateaus when classes are not unimodal blobs,
//!   which is exactly the behaviour Figure 4 shows (k-means converging to
//!   ~87% while the other synopses reach ~98%).
//! * [`KMeans`] in *lloyd* mode: classic unsupervised Lloyd iterations with
//!   `k` centroids, each cluster voting its majority label.  Used by the
//!   correlation-analysis diagnosis ("by clustering the data as in \[8\]") and
//!   by the ablation benchmarks.

use crate::dataset::Dataset;
use crate::distance::Distance;
use crate::{Classifier, Label};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How the clusters are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterMode {
    /// One cluster per label; representative = mean of the label's points
    /// (the paper's description of the k-means synopsis).
    LabelPartition,
    /// Classic unsupervised Lloyd's algorithm with `k` clusters; each
    /// cluster is labelled by majority vote of its members.
    Lloyd {
        /// Number of clusters.
        k: usize,
        /// Maximum number of Lloyd iterations.
        max_iters: usize,
    },
}

/// A cluster: its centroid, its label, and how many points it represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Mean of the member points.
    pub centroid: Vec<f64>,
    /// Label recommended for points mapped to this cluster.
    pub label: Label,
    /// Number of member points.
    pub size: usize,
}

/// K-means synopsis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    mode: ClusterMode,
    metric: Distance,
    seed: u64,
    clusters: Vec<Cluster>,
    last_fit_cost: u64,
}

impl KMeans {
    /// Creates the paper's label-partition k-means synopsis.
    pub fn new() -> Self {
        KMeans {
            mode: ClusterMode::LabelPartition,
            metric: Distance::Euclidean,
            seed: 0x5e1f_4ea1,
            clusters: Vec::new(),
            last_fit_cost: 0,
        }
    }

    /// Creates an unsupervised Lloyd's-algorithm k-means with `k` clusters.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn lloyd(k: usize, max_iters: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeans {
            mode: ClusterMode::Lloyd {
                k,
                max_iters: max_iters.max(1),
            },
            metric: Distance::Euclidean,
            seed: 0x5e1f_4ea1,
            clusters: Vec::new(),
            last_fit_cost: 0,
        }
    }

    /// Sets the distance metric.
    pub fn with_metric(mut self, metric: Distance) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the seed used for Lloyd initialization.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The fitted clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    fn fit_label_partition(&mut self, data: &Dataset) {
        let mut by_label: BTreeMap<Label, (Vec<f64>, usize)> = BTreeMap::new();
        for (features, label) in data.iter() {
            let entry = by_label
                .entry(label)
                .or_insert_with(|| (vec![0.0; data.width()], 0));
            for (acc, v) in entry.0.iter_mut().zip(features) {
                *acc += v;
            }
            entry.1 += 1;
        }
        let mut clusters: Vec<Cluster> = by_label
            .into_iter()
            .map(|(label, (mut sums, count))| {
                for s in &mut sums {
                    *s /= count as f64;
                }
                Cluster {
                    centroid: sums,
                    label,
                    size: count,
                }
            })
            .collect();
        clusters.sort_by_key(|c| c.label);
        self.last_fit_cost = data.len() as u64;
        self.clusters = clusters;
    }

    fn fit_lloyd(&mut self, data: &Dataset, k: usize, max_iters: usize) {
        let mut cost = 0u64;
        let examples = data.examples();
        if examples.is_empty() {
            self.clusters = Vec::new();
            self.last_fit_cost = 0;
            return;
        }
        let k = k.min(examples.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut indices: Vec<usize> = (0..examples.len()).collect();
        indices.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f64>> = indices
            .iter()
            .take(k)
            .map(|i| examples[*i].features.clone())
            .collect();
        let mut assignment = vec![0usize; examples.len()];

        for _ in 0..max_iters {
            // Assignment step.
            let mut changed = false;
            for (i, e) in examples.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = self.metric.between(&e.features, centroid);
                    cost += 1;
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0; data.width()]; k];
            let mut counts = vec![0usize; k];
            for (i, e) in examples.iter().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (acc, v) in sums[c].iter_mut().zip(&e.features) {
                    *acc += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for v in &mut sums[c] {
                        *v /= counts[c] as f64;
                    }
                    centroids[c] = sums[c].clone();
                }
            }
            if !changed {
                break;
            }
        }

        // Label each cluster by majority vote.
        let mut clusters = Vec::with_capacity(k);
        for (c, centroid) in centroids.into_iter().enumerate() {
            let mut votes: BTreeMap<Label, usize> = BTreeMap::new();
            let mut size = 0usize;
            for (i, e) in examples.iter().enumerate() {
                if assignment[i] == c {
                    *votes.entry(e.label).or_insert(0) += 1;
                    size += 1;
                }
            }
            if size == 0 {
                continue;
            }
            let label = votes
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(l, _)| l)
                .unwrap_or(0);
            clusters.push(Cluster {
                centroid,
                label,
                size,
            });
        }
        self.last_fit_cost = cost;
        self.clusters = clusters;
    }
}

impl Default for KMeans {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for KMeans {
    fn fit(&mut self, data: &Dataset) {
        match self.mode {
            ClusterMode::LabelPartition => self.fit_label_partition(data),
            ClusterMode::Lloyd { k, max_iters } => self.fit_lloyd(data, k, max_iters),
        }
    }

    fn predict(&self, features: &[f64]) -> Label {
        self.predict_with_confidence(features).0
    }

    fn predict_with_confidence(&self, features: &[f64]) -> (Label, f64) {
        if self.clusters.is_empty() {
            return (0, 0.0);
        }
        let mut best: Option<(f64, &Cluster)> = None;
        let mut second_best = f64::INFINITY;
        for cluster in &self.clusters {
            let d = self.metric.between(features, &cluster.centroid);
            match best {
                None => best = Some((d, cluster)),
                Some((bd, _)) if d < bd => {
                    second_best = bd;
                    best = Some((d, cluster));
                }
                Some(_) => second_best = second_best.min(d),
            }
        }
        let (best_d, cluster) = best.expect("nonempty clusters");
        // Confidence: how much closer the winning centroid is than the
        // runner-up (1.0 when unambiguous, 0.5 when equidistant).
        let confidence = if self.clusters.len() == 1 || !second_best.is_finite() {
            1.0
        } else if best_d + second_best <= f64::EPSILON {
            0.5
        } else {
            (second_best / (best_d + second_best)).clamp(0.0, 1.0)
        };
        (cluster.label, confidence)
    }

    fn last_fit_cost(&self) -> u64 {
        self.last_fit_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Example;

    fn blob_data() -> Dataset {
        let mut examples = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            examples.push(Example::new(vec![0.0 + jitter, 0.0 - jitter], 0));
            examples.push(Example::new(vec![5.0 + jitter, 5.0 - jitter], 1));
            examples.push(Example::new(vec![10.0 + jitter, 0.0 + jitter], 2));
        }
        Dataset::from_examples(examples)
    }

    #[test]
    fn label_partition_builds_one_cluster_per_label() {
        let mut km = KMeans::new();
        km.fit(&blob_data());
        assert_eq!(km.clusters().len(), 3);
        for c in km.clusters() {
            assert_eq!(c.size, 10);
        }
    }

    #[test]
    fn label_partition_classifies_blob_points() {
        let mut km = KMeans::new();
        km.fit(&blob_data());
        assert_eq!(km.predict(&[0.1, 0.1]), 0);
        assert_eq!(km.predict(&[5.2, 4.8]), 1);
        assert_eq!(km.predict(&[9.8, 0.2]), 2);
    }

    #[test]
    fn confidence_reflects_ambiguity() {
        let mut km = KMeans::new();
        km.fit(&blob_data());
        let (_, confident) = km.predict_with_confidence(&[0.0, 0.0]);
        let (_, ambiguous) = km.predict_with_confidence(&[2.5, 2.5]);
        assert!(confident > ambiguous);
    }

    #[test]
    fn lloyd_recovers_well_separated_clusters() {
        let mut km = KMeans::lloyd(3, 50).with_seed(42);
        km.fit(&blob_data());
        assert!(km.clusters().len() >= 2);
        assert_eq!(km.predict(&[0.0, 0.0]), 0);
        assert_eq!(km.predict(&[10.0, 0.0]), 2);
        assert!(Classifier::last_fit_cost(&km) > 0);
    }

    #[test]
    fn empty_model_predicts_default_label() {
        let km = KMeans::new();
        assert_eq!(km.predict_with_confidence(&[1.0, 2.0]), (0, 0.0));
    }

    #[test]
    fn lloyd_handles_k_larger_than_dataset() {
        let mut km = KMeans::lloyd(10, 10);
        let data =
            Dataset::from_examples(vec![Example::new(vec![0.0], 0), Example::new(vec![1.0], 1)]);
        km.fit(&data);
        assert!(km.clusters().len() <= 2);
    }

    #[test]
    fn refitting_replaces_clusters() {
        let mut km = KMeans::new();
        km.fit(&blob_data());
        let data2 = Dataset::from_examples(vec![Example::new(vec![100.0, 100.0], 9)]);
        km.fit(&data2);
        assert_eq!(km.clusters().len(), 1);
        assert_eq!(km.predict(&[0.0, 0.0]), 9);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn lloyd_rejects_zero_k() {
        KMeans::lloyd(0, 10);
    }
}
