//! # selfheal-jsonl
//!
//! Hand-rolled JSON-lines primitives shared by every codec in the workspace.
//!
//! The build environment has no registry access (the `serde` dependency is a
//! no-op shim), so persistence formats are written by hand.  Two codecs need
//! the same low-level machinery — the request-trace codec in
//! `selfheal_workload::codec` and the synopsis codec in
//! `selfheal_core::snapshot` — and this crate is that machinery, extracted
//! once instead of duplicated:
//!
//! * [`Scanner`] — a recursive-descent cursor over one line: whitespace
//!   skipping, token expectation, and number / boolean / string parsing
//!   (including escape sequences).
//! * [`escape_into`] / [`push_json_string`] — the serialization-side string
//!   escaping the scanner undoes.
//! * [`JsonError`] — a parse failure with line and byte-offset context.
//! * [`parse_lines`] — the JSON-lines document loop (skip blanks, stamp
//!   1-based line numbers onto errors).
//!
//! The contract every codec built on these primitives upholds is
//! `parse ∘ serialize = id`, asserted structurally by the round-trip
//! property tests in `tests/properties.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::borrow::Cow;
use std::fmt;

/// A parse failure, with the 1-based line number when decoding a whole
/// JSON-lines document (0 when parsing a single line directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the failure; 0 for single-line parses.
    pub line: usize,
    /// Byte offset of the failure within the line.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    /// Creates an error at a byte offset within the current line.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            line: 0,
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "codec error at line {}, byte {}: {}",
                self.line, self.offset, self.message
            )
        } else {
            write!(f, "codec error at byte {}: {}", self.offset, self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters).  The inverse of [`Scanner::parse_string`].
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends `"s"` (quoted and escaped) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Appends a finite `f64` in shortest round-trip form; non-finite values
/// (which valid telemetry never produces) are written as `0`, keeping the
/// output well-formed JSON.
pub fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        out.push_str(&format!("{value:?}"));
    } else {
        out.push('0');
    }
}

/// Parses a JSON-lines document: blank lines are skipped, and every error
/// from `parse` is stamped with its 1-based line number.
pub fn parse_lines<T>(
    text: &str,
    mut parse: impl FnMut(&str) -> Result<T, JsonError>,
) -> Result<Vec<T>, JsonError> {
    let mut items = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        items.push(parse(line).map_err(|mut err| {
            err.line = index + 1;
            err
        })?);
    }
    Ok(items)
}

/// A minimal recursive-descent scanner over one JSON line.
///
/// Object and array structure stays in the calling codec (each knows its own
/// schema); the scanner owns the token-level work every codec shares.
#[derive(Debug)]
pub struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    /// Starts a scanner at the beginning of `line`.
    pub fn new(line: &'a str) -> Self {
        Scanner {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    /// Current byte offset (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the cursor is past the final byte.
    pub fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// The byte under the cursor, if any.
    pub fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Advances one byte.
    pub fn bump(&mut self) {
        self.pos += 1;
    }

    /// Skips spaces and tabs (JSON-lines records never span lines).
    pub fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `byte` (after optional whitespace) or errors.
    pub fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(JsonError::at(
                self.pos,
                format!("expected '{}', found '{}'", byte as char, b as char),
            )),
            None => Err(JsonError::at(
                self.pos,
                format!("expected '{}', found end of line", byte as char),
            )),
        }
    }

    /// Errors unless the cursor (after optional whitespace) is at the end of
    /// the line — the trailing-data check every single-line parse ends with.
    pub fn finish(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        if self.at_end() {
            Ok(())
        } else {
            Err(JsonError::at(self.pos, "trailing data after the record"))
        }
    }

    /// Parses an unsigned decimal integer.
    pub fn parse_u64(&mut self) -> Result<u64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(JsonError::at(start, "expected an unsigned integer"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        digits
            .parse::<u64>()
            .map_err(|_| JsonError::at(start, format!("integer out of range: {digits}")))
    }

    /// Parses a JSON number as `f64` (sign, fraction, and exponent forms).
    pub fn parse_f64(&mut self) -> Result<f64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.peek(), Some(b'-' | b'+')) {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E')) {
            self.pos += 1;
            // An exponent may carry its own sign.
            if matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
                && matches!(self.peek(), Some(b'-' | b'+'))
            {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(JsonError::at(start, "expected a number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map_err(|_| JsonError::at(start, format!("invalid number: {text}")))
    }

    /// Parses `true` or `false`.
    pub fn parse_bool(&mut self) -> Result<bool, JsonError> {
        self.skip_ws();
        let rest = &self.bytes[self.pos.min(self.bytes.len())..];
        if rest.starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if rest.starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(JsonError::at(self.pos, "expected 'true' or 'false'"))
        }
    }

    /// Parses a `"..."` string, interpreting the escape sequences
    /// [`escape_into`] produces.  Borrows from the line when no escapes are
    /// present (the common case for identifier-like labels).
    pub fn parse_string(&mut self) -> Result<Cow<'a, str>, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        // Fast path: scan for the closing quote; fall back to owned
        // unescaping the moment a backslash appears.
        loop {
            match self.peek() {
                Some(b'"') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::at(start, "string is not valid UTF-8"))?;
                    self.pos += 1;
                    return Ok(Cow::Borrowed(s));
                }
                Some(b'\\') => return self.parse_string_escaped(start).map(Cow::Owned),
                Some(_) => self.pos += 1,
                None => return Err(JsonError::at(self.pos, "unterminated string")),
            }
        }
    }

    fn parse_string_escaped(&mut self, start: usize) -> Result<String, JsonError> {
        let prefix = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "string is not valid UTF-8"))?;
        let mut out = String::from(prefix);
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let at = self.pos - 1;
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| JsonError::at(at, "invalid \\u escape sequence"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => {
                            return Err(JsonError::at(self.pos, "unknown escape sequence"));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences are copied verbatim.
                    let seq_start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[seq_start..self.pos])
                        .map_err(|_| JsonError::at(seq_start, "string is not valid UTF-8"))?;
                    out.push_str(s);
                }
                None => return Err(JsonError::at(self.pos, "unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_parses_the_core_token_kinds() {
        let mut s = Scanner::new("{ \"n\": 42, \"x\": -1.5e3, \"ok\": true }");
        s.expect(b'{').unwrap();
        assert_eq!(s.parse_string().unwrap(), "n");
        s.expect(b':').unwrap();
        assert_eq!(s.parse_u64().unwrap(), 42);
        s.expect(b',').unwrap();
        assert_eq!(s.parse_string().unwrap(), "x");
        s.expect(b':').unwrap();
        assert_eq!(s.parse_f64().unwrap(), -1500.0);
        s.expect(b',').unwrap();
        assert_eq!(s.parse_string().unwrap(), "ok");
        s.expect(b':').unwrap();
        assert!(s.parse_bool().unwrap());
        s.expect(b'}').unwrap();
        s.finish().unwrap();
    }

    #[test]
    fn escape_and_unescape_are_inverse() {
        let nasty = "a\"b\\c\nd\te\r\u{1}é—日本";
        let mut out = String::new();
        push_json_string(&mut out, nasty);
        let mut s = Scanner::new(&out);
        assert_eq!(s.parse_string().unwrap(), nasty);
        assert!(s.at_end());
    }

    #[test]
    fn unescaped_strings_borrow_from_the_line() {
        let mut s = Scanner::new("\"plain_label\"");
        match s.parse_string().unwrap() {
            Cow::Borrowed(b) => assert_eq!(b, "plain_label"),
            Cow::Owned(_) => panic!("escape-free strings must borrow"),
        }
    }

    #[test]
    fn floats_round_trip_in_shortest_form() {
        for v in [0.0, -0.0, 1.0, -2.5, 1e-12, 123456.789, f64::MIN, f64::MAX] {
            let mut out = String::new();
            push_f64(&mut out, v);
            let mut s = Scanner::new(&out);
            let back = s.parse_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {out}");
        }
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "0", "non-finite values degrade to 0");
    }

    #[test]
    fn parse_lines_skips_blanks_and_numbers_errors() {
        let doc = "1\n\n  \n2\nx\n";
        let err =
            parse_lines(doc, |line| Scanner::new(line).parse_u64()).expect_err("the x line fails");
        assert_eq!(err.line, 5);

        let ok = parse_lines("1\n\n2\n", |line| Scanner::new(line).parse_u64()).unwrap();
        assert_eq!(ok, vec![1, 2]);
    }

    #[test]
    fn errors_carry_offsets_and_display_both_forms() {
        let mut s = Scanner::new("  }");
        let err = s.expect(b'{').unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(err.to_string().contains("byte 2"));
        let mut lined = err.clone();
        lined.line = 7;
        assert!(lined.to_string().contains("line 7"));
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        assert!(Scanner::new("abc").parse_u64().is_err());
        assert!(Scanner::new("--5").parse_f64().is_err());
        assert!(Scanner::new("tru").parse_bool().is_err());
        assert!(Scanner::new("\"open").parse_string().is_err());
        assert!(Scanner::new("\"bad\\q\"").parse_string().is_err());
        assert!(Scanner::new("\"bad\\u00zz\"").parse_string().is_err());
        let mut s = Scanner::new("1 trailing");
        s.parse_u64().unwrap();
        assert!(s.finish().is_err());
    }
}
