//! Cross-replica fleet events: correlated fault storms and fleet-wide
//! workload surges, scheduled against a running fleet.
//!
//! A [`FleetEvent`] is a fleet-level statement ("at tick 400, buffer
//! contention hits half the fleet") that the engine *resolves* into
//! per-replica [`ReplicaAction`]s before the run starts.  Workers apply each
//! action exactly when its replica reaches the action's tick, so an
//! event-laden run is a pure function of the configuration — fingerprints
//! are identical at any worker count and any tick-slice width (asserted by
//! `tests/scheduler.rs`).
//!
//! Two events ship with the crate, mirroring the declarative
//! [`selfheal_core::harness::EventChoice`] recipes:
//!
//! * [`FaultStorm`] — a [`selfheal_faults::StormSpec`] at a tick: every
//!   victim replica (a deterministic, evenly spread fraction of the fleet)
//!   receives the same fault at the same tick.
//! * [`WorkloadSurge`] — a fleet-wide flash crowd: every replica's request
//!   batches are amplified for a window of ticks.
//!
//! # Implementing the trait
//!
//! ```
//! use selfheal_fleet::events::{FleetEvent, FleetShape, ReplicaAction};
//!
//! /// Doubles traffic on one chosen replica for 50 ticks — a targeted
//! /// (rather than fleet-wide) surge.
//! #[derive(Debug)]
//! struct HotReplica {
//!     at_tick: u64,
//!     replica: usize,
//! }
//!
//! impl FleetEvent for HotReplica {
//!     fn due_tick(&self) -> u64 {
//!         self.at_tick
//!     }
//!
//!     fn label(&self) -> String {
//!         format!("hot_replica_{}", self.replica)
//!     }
//!
//!     fn resolve(&self, fleet: &FleetShape) -> Vec<(usize, ReplicaAction)> {
//!         if self.replica >= fleet.replicas {
//!             return Vec::new();
//!         }
//!         vec![(
//!             self.replica,
//!             ReplicaAction::Surge {
//!                 factor: 2.0,
//!                 until_tick: self.at_tick + 50,
//!             },
//!         )]
//!     }
//! }
//!
//! let event = HotReplica { at_tick: 10, replica: 1 };
//! let shape = FleetShape { replicas: 4, ticks: 100, base_seed: 42 };
//! assert_eq!(event.resolve(&shape).len(), 1);
//! ```

use selfheal_core::harness::EventChoice;
use selfheal_faults::{FaultKind, FaultSpec, ServiceProfile, StormSpec, STORM_FAULT_ID_BASE};
use std::collections::BTreeMap;

/// The shape of the fleet an event is resolved against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetShape {
    /// Number of replicas in the fleet.
    pub replicas: usize,
    /// Ticks each replica will simulate.
    pub ticks: u64,
    /// The fleet's base seed (for events that want deterministic
    /// per-resolution randomness).
    pub base_seed: u64,
}

/// One resolved per-replica effect of a fleet event.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaAction {
    /// Inject this fault into the replica at the action's tick.
    Inject(FaultSpec),
    /// Amplify the replica's request batches by `factor` until `until_tick`
    /// (exclusive), starting at the action's tick.
    Surge {
        /// Request-batch amplification factor (≥ 1.0).
        factor: f64,
        /// First tick no longer surged.
        until_tick: u64,
    },
}

/// A cross-replica event scheduled against a fleet run.
///
/// Implementations must resolve deterministically: the per-replica actions
/// may depend only on the event itself and the [`FleetShape`], never on
/// wall-clock state, so every execution mode reproduces the same run.
pub trait FleetEvent: Send + Sync + std::fmt::Debug {
    /// The tick at which the event fires (actions resolved from it default
    /// to this tick).
    fn due_tick(&self) -> u64;

    /// Short display label for bench output.
    fn label(&self) -> String;

    /// Resolves the fleet-level event into per-replica actions, applied
    /// when each replica reaches [`FleetEvent::due_tick`].
    fn resolve(&self, fleet: &FleetShape) -> Vec<(usize, ReplicaAction)>;

    /// The last tick at which this event's effects can still be introduced
    /// (defaults to [`FleetEvent::due_tick`]; events with extended effects,
    /// like surges, report when the effect ends) — quiesce detection runs
    /// the fleet past the horizon plus a healing tail.
    fn horizon(&self) -> u64 {
        self.due_tick()
    }
}

/// A correlated fault storm: at [`FleetEvent::due_tick`], the storm's fault
/// hits a deterministic fraction of the fleet (see
/// [`StormSpec`] for the victim-selection rule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultStorm {
    at_tick: u64,
    spec: StormSpec,
}

impl FaultStorm {
    /// Creates a uniform storm striking at `at_tick`: every victim receives
    /// the same failure class.
    pub fn new(at_tick: u64, kind: FaultKind, severity: f64, fraction: f64) -> Self {
        FaultStorm {
            at_tick,
            spec: StormSpec::new(kind, severity, fraction),
        }
    }

    /// Creates a *catalog* storm striking at `at_tick`: each victim's
    /// failure class is drawn from `profile`'s cause mix, keyed by the
    /// fleet's base seed at resolution time (so the draw is a pure function
    /// of the configuration).
    pub fn catalog(at_tick: u64, profile: ServiceProfile, severity: f64, fraction: f64) -> Self {
        FaultStorm {
            at_tick,
            spec: StormSpec::catalog(profile, severity, fraction),
        }
    }

    /// The underlying storm spec.
    pub fn spec(&self) -> StormSpec {
        self.spec
    }
}

impl FleetEvent for FaultStorm {
    fn due_tick(&self) -> u64 {
        self.at_tick
    }

    fn label(&self) -> String {
        match self.spec.mix {
            Some(profile) => format!(
                "storm@{}x{:.2}_mix_{}",
                self.at_tick,
                self.spec.fraction,
                profile.name().to_lowercase()
            ),
            None => format!(
                "storm@{}x{:.2}_{}",
                self.at_tick,
                self.spec.fraction,
                self.spec.kind.label()
            ),
        }
    }

    fn resolve(&self, fleet: &FleetShape) -> Vec<(usize, ReplicaAction)> {
        self.spec
            .victims(fleet.replicas)
            .into_iter()
            .map(|victim| {
                // The id is provisional; EventPlan::resolve re-stamps every
                // injected fault with a unique id in the storm namespace.
                // Catalog-mode storms draw each victim's class from the
                // cause mix, keyed by the fleet's base seed.
                (
                    victim,
                    ReplicaAction::Inject(self.spec.fault_for(
                        STORM_FAULT_ID_BASE,
                        victim,
                        fleet.base_seed,
                    )),
                )
            })
            .collect()
    }
}

/// A fleet-wide workload surge: every replica's request batches are
/// amplified by `factor` for `duration_ticks` starting at
/// [`FleetEvent::due_tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSurge {
    at_tick: u64,
    duration_ticks: u64,
    factor: f64,
}

impl WorkloadSurge {
    /// Creates a surge covering ticks `[at_tick, at_tick + duration_ticks)`.
    pub fn new(at_tick: u64, duration_ticks: u64, factor: f64) -> Self {
        WorkloadSurge {
            at_tick,
            duration_ticks,
            factor: factor.max(1.0),
        }
    }
}

impl FleetEvent for WorkloadSurge {
    fn due_tick(&self) -> u64 {
        self.at_tick
    }

    fn label(&self) -> String {
        format!("surge@{}x{:.1}", self.at_tick, self.factor)
    }

    fn horizon(&self) -> u64 {
        self.at_tick
            .saturating_add(self.duration_ticks)
            .saturating_sub(1)
    }

    fn resolve(&self, fleet: &FleetShape) -> Vec<(usize, ReplicaAction)> {
        let until_tick = self.at_tick.saturating_add(self.duration_ticks);
        (0..fleet.replicas)
            .map(|replica| {
                (
                    replica,
                    ReplicaAction::Surge {
                        factor: self.factor,
                        until_tick,
                    },
                )
            })
            .collect()
    }
}

/// The schedule of cross-replica events for one fleet run.
///
/// Build one from declarative [`EventChoice`]s
/// ([`EventPlan::from_choices`], what `FleetConfig::events` does under the
/// hood) or push any custom [`FleetEvent`] implementation with
/// [`EventPlan::with`].
#[derive(Debug, Default)]
pub struct EventPlan {
    events: Vec<Box<dyn FleetEvent>>,
}

impl EventPlan {
    /// An empty plan.
    pub fn new() -> Self {
        EventPlan::default()
    }

    /// Builds a plan from declarative choices.
    pub fn from_choices(choices: impl IntoIterator<Item = EventChoice>) -> Self {
        let mut plan = EventPlan::new();
        for choice in choices {
            plan.push_choice(choice);
        }
        plan
    }

    /// Adds one event (builder style).
    pub fn with(mut self, event: impl FleetEvent + 'static) -> Self {
        self.events.push(Box::new(event));
        self
    }

    /// Adds one declarative choice.
    pub fn push_choice(&mut self, choice: EventChoice) {
        match choice {
            EventChoice::FaultStorm {
                at_tick,
                kind,
                severity,
                fraction,
            } => self
                .events
                .push(Box::new(FaultStorm::new(at_tick, kind, severity, fraction))),
            EventChoice::CatalogStorm {
                at_tick,
                profile,
                severity,
                fraction,
            } => self.events.push(Box::new(FaultStorm::catalog(
                at_tick, profile, severity, fraction,
            ))),
            EventChoice::WorkloadSurge {
                at_tick,
                duration_ticks,
                factor,
            } => self.events.push(Box::new(WorkloadSurge::new(
                at_tick,
                duration_ticks,
                factor,
            ))),
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Event labels, in schedule order.
    pub fn labels(&self) -> Vec<String> {
        self.events.iter().map(|e| e.label()).collect()
    }

    /// The last tick at which any scheduled event can still introduce an
    /// effect, or `None` for an empty plan.  Quiesce detection
    /// ([`crate::FleetConfig::run_to_quiescence`]) runs the fleet past this
    /// horizon plus a healing tail.
    pub fn horizon(&self) -> Option<u64> {
        self.events.iter().map(|e| e.horizon()).max()
    }

    /// Resolves every event against the fleet's shape into the per-replica,
    /// per-tick action schedule the scheduler consults.  Injected faults are
    /// re-stamped with unique ids in the [`STORM_FAULT_ID_BASE`] namespace
    /// so two events can never collide with each other or with a replica's
    /// own injection plan.
    pub(crate) fn resolve(&self, fleet: &FleetShape) -> ActionSchedule {
        let mut per_replica: Vec<BTreeMap<u64, Vec<ReplicaAction>>> =
            (0..fleet.replicas).map(|_| BTreeMap::new()).collect();
        let mut next_fault_id = STORM_FAULT_ID_BASE;
        for event in &self.events {
            let tick = event.due_tick();
            for (replica, mut action) in event.resolve(fleet) {
                if replica >= fleet.replicas {
                    continue;
                }
                if let ReplicaAction::Inject(fault) = &mut action {
                    fault.id = selfheal_faults::FaultId(next_fault_id);
                    next_fault_id += 1;
                }
                per_replica[replica].entry(tick).or_default().push(action);
            }
        }
        ActionSchedule { per_replica }
    }
}

/// Per-replica, per-tick actions resolved from an [`EventPlan`] — what the
/// scheduler's workers (and the sequential interleaver) actually consult.
#[derive(Debug, Default)]
pub(crate) struct ActionSchedule {
    per_replica: Vec<BTreeMap<u64, Vec<ReplicaAction>>>,
}

impl ActionSchedule {
    /// The actions replica `replica` must apply immediately before stepping
    /// through `tick`.
    pub(crate) fn actions_for(&self, replica: usize, tick: u64) -> &[ReplicaAction] {
        self.per_replica
            .get(replica)
            .and_then(|by_tick| by_tick.get(&tick))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_resolve_to_unique_fault_ids_on_victims_only() {
        let plan = EventPlan::from_choices([
            EventChoice::storm(100, FaultKind::BufferContention, 0.5),
            EventChoice::storm(100, FaultKind::DeadlockedThreads, 0.25),
        ]);
        let shape = FleetShape {
            replicas: 8,
            ticks: 500,
            base_seed: 42,
        };
        let schedule = plan.resolve(&shape);
        let mut ids = Vec::new();
        let mut victims = 0;
        for replica in 0..8 {
            for action in schedule.actions_for(replica, 100) {
                let ReplicaAction::Inject(fault) = action else {
                    panic!("storms resolve to injections");
                };
                assert!(fault.id.0 >= STORM_FAULT_ID_BASE);
                ids.push(fault.id.0);
                victims += 1;
            }
            assert!(schedule.actions_for(replica, 99).is_empty());
        }
        assert_eq!(victims, 4 + 2);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6, "every storm fault gets a unique id");
    }

    #[test]
    fn surges_cover_the_whole_fleet() {
        let plan = EventPlan::from_choices([EventChoice::surge(40, 20, 3.0)]);
        let shape = FleetShape {
            replicas: 3,
            ticks: 100,
            base_seed: 1,
        };
        let schedule = plan.resolve(&shape);
        for replica in 0..3 {
            let actions = schedule.actions_for(replica, 40);
            assert_eq!(
                actions,
                &[ReplicaAction::Surge {
                    factor: 3.0,
                    until_tick: 60
                }]
            );
        }
    }

    #[test]
    fn catalog_storms_draw_per_victim_kinds_from_the_mix() {
        let plan =
            EventPlan::from_choices([EventChoice::catalog_storm(60, ServiceProfile::Online, 1.0)]);
        let shape = FleetShape {
            replicas: 24,
            ticks: 300,
            base_seed: 42,
        };
        let schedule = plan.resolve(&shape);
        let mut kinds = Vec::new();
        for replica in 0..24 {
            for action in schedule.actions_for(replica, 60) {
                let ReplicaAction::Inject(fault) = action else {
                    panic!("storms resolve to injections");
                };
                assert!(fault.id.0 >= STORM_FAULT_ID_BASE);
                kinds.push(fault.kind);
            }
        }
        assert_eq!(kinds.len(), 24, "full-fraction storm hits everyone");
        let distinct: std::collections::HashSet<_> = kinds.iter().copied().collect();
        assert!(
            distinct.len() >= 3,
            "victims manifest several failure classes: {distinct:?}"
        );
        // Same shape, same seed → same resolution.
        let again = plan.resolve(&shape);
        for replica in 0..24 {
            assert_eq!(
                schedule.actions_for(replica, 60),
                again.actions_for(replica, 60)
            );
        }
        // A different base seed reshuffles the class draw.
        let reseeded = plan.resolve(&FleetShape {
            base_seed: 43,
            ..shape
        });
        let rekinds: Vec<_> = (0..24).flat_map(|r| reseeded.actions_for(r, 60)).collect();
        assert_ne!(
            kinds,
            rekinds
                .iter()
                .map(|a| {
                    let ReplicaAction::Inject(fault) = a else {
                        panic!("storms resolve to injections");
                    };
                    fault.kind
                })
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn labels_name_the_events() {
        let plan = EventPlan::from_choices([
            EventChoice::storm(100, FaultKind::BufferContention, 0.5),
            EventChoice::surge(40, 20, 3.0),
        ]);
        assert_eq!(plan.len(), 2);
        assert!(plan.labels()[0].starts_with("storm@100"));
        assert!(plan.labels()[1].starts_with("surge@40"));
    }
}
