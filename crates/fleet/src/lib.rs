//! # selfheal-fleet
//!
//! The fleet engine: N independently-seeded replicas of the simulated
//! multitier service, each driven by its own healing policy, optionally
//! coordinating through one fleet-shared fix-signature synopsis.
//!
//! The paper's FixSym loop (Figure 3) learns on a single service instance,
//! but its scaling argument (Table 3: synopses are cheap to build and query)
//! is that the *same synopsis* can serve many instances: once replica A has
//! healed a failure signature, replicas B..N facing that signature fix it on
//! the first attempt.  This crate turns that argument into an executable
//! subsystem:
//!
//! * [`FleetConfig`] — how many replicas, how long, which policy, which
//!   workload shape (a declarative
//!   [`selfheal_core::harness::WorkloadChoice`]: synthetic arrivals,
//!   recorded-trace replay with per-replica phase shifts, or burst storms),
//!   where learned state lives (a declarative
//!   [`selfheal_core::harness::LearnerChoice`]: a private
//!   per-replica store, one lock-shared store, or symptom-space shards —
//!   optionally warm-started from a saved
//!   [`selfheal_core::snapshot::SynopsisSnapshot`]), and how replicas
//!   execute ([`ExecutionMode::Parallel`] worker threads vs the
//!   [`ExecutionMode::Sequential`] round-robin interleaver).
//! * [`FleetEngine`] — builds one resumable
//!   [`selfheal_sim::ScenarioRunner`] per replica (seeded via
//!   [`selfheal_sim::seeds::split_seed`]) and drives the whole fleet
//!   through the tick-sliced [`scheduler`]: worker threads advance replicas
//!   one `slice`-tick epoch at a time through a barrier, so every replica
//!   lives concurrently and cross-replica [`events`] (correlated
//!   [`events::FaultStorm`]s, fleet-wide [`events::WorkloadSurge`]s —
//!   declared via [`selfheal_core::harness::EventChoice`] on the config)
//!   land at exact ticks.  With **isolated** learning, replica `i`'s entire
//!   run is a pure function of `(base_seed, i)` — identical at any fleet
//!   size, thread count, and slice width (asserted by `tests/fleet.rs` and
//!   `tests/scheduler.rs`).  With **shared** learning, store access is
//!   gated into the sequential round-robin order, so even parallel fleets
//!   reproduce [`ExecutionMode::Sequential`]'s fingerprints bit for bit.
//!   A replica that panics is retired as a [`ReplicaError`] instead of
//!   aborting the fleet.
//! * [`FleetOutcome`] / [`ReplicaOutcome`] — per-replica scenario outcomes
//!   plus fleet-level throughput, recovery, and shared-learning statistics.
//!
//! ## Example
//!
//! ```
//! use selfheal_fleet::{FleetConfig, LearningTopology};
//! use selfheal_core::harness::PolicyChoice;
//! use selfheal_core::synopsis::SynopsisKind;
//! use selfheal_sim::ServiceConfig;
//!
//! let outcome = FleetConfig::builder()
//!     .service(ServiceConfig::tiny())
//!     .replicas(4)
//!     .ticks(120)
//!     .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
//!     .topology(LearningTopology::shared())
//!     .run();
//! assert_eq!(outcome.replicas().len(), 4);
//! assert_eq!(outcome.total_ticks(), 4 * 120);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod reactive;
pub mod scheduler;

use crate::events::{EventPlan, FleetShape};
use crate::reactive::{ReactiveContext, ReactivePlan, ReactiveRecord};
pub use crate::scheduler::ReplicaError;
use crate::scheduler::StoreGate;
use selfheal_core::harness::{
    EventChoice, FaultChoice, LearnerChoice, PolicyChoice, ReactiveChoice, WorkloadChoice,
};
use selfheal_core::snapshot::SynopsisSnapshot;
use selfheal_core::store::{LockedStore, SynopsisStore};
use selfheal_faults::{FaultSource, InjectionPlan, ScriptedSource};
use selfheal_sim::scenario::{Healer, ScenarioOutcome, ScenarioRunner};
use selfheal_sim::seeds::{split_seed, SeedStream};
use selfheal_sim::{MultiTierService, ServiceConfig};
use selfheal_workload::{ArrivalProcess, TraceSource, WorkloadMix};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
// lint:allow(nondeterminism): wall-time import feeds the wall_time report
// field only; simulation state never reads it.
use std::time::{Duration, Instant};

/// How replica healers relate to each other's learned state — the original
/// two-way switch, kept as a shorthand for the [`LearnerChoice`] recipes it
/// maps onto ([`FleetConfig::topology`] translates; [`FleetConfig::learner`]
/// accepts the full recipe set, including sharded stores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearningTopology {
    /// Every replica's signature-based healer reads and teaches one
    /// fleet-wide [`LockedStore`]; updates drain in batches of `batch`.
    /// Non-learning policies fall back to isolated behaviour.
    Shared {
        /// Queued updates that trigger one combined drain + retrain.
        batch: usize,
    },
    /// Every replica learns alone (the paper's single-instance setup).
    Isolated,
}

impl LearningTopology {
    /// Shared learning with the default batch threshold.
    pub fn shared() -> Self {
        LearningTopology::Shared {
            batch: LockedStore::DEFAULT_BATCH,
        }
    }

    /// The [`LearnerChoice`] recipe this topology names.
    pub fn learner_choice(self) -> LearnerChoice {
        match self {
            LearningTopology::Shared { batch } => LearnerChoice::Locked { batch },
            LearningTopology::Isolated => LearnerChoice::Private,
        }
    }
}

/// How the fleet's replicas are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Replicas advance through the tick-sliced [`scheduler`] on `threads`
    /// OS worker threads (`None` = one per available core): every replica
    /// lives concurrently, epoch barriers every [`FleetConfig::slice`]
    /// ticks, shared-store access gated into sequential order.  With
    /// `slice >= ticks` and private learners this degenerates to the old
    /// run-to-completion parallelism.
    Parallel {
        /// Worker thread count; `None` uses the machine's parallelism.
        threads: Option<usize>,
    },
    /// All replicas are interleaved slice-by-slice (tick-by-tick at the
    /// default slice of 1) on the calling thread — the single-core baseline
    /// the scaling bench compares against, and the reference interleave the
    /// parallel scheduler reproduces for shared stores.
    Sequential,
}

type PlanFactory = dyn Fn(usize) -> InjectionPlan + Send + Sync;

/// The fault schedule a fleet carries: either a declarative [`FaultChoice`]
/// (instantiated per replica with split seeds) or a caller-supplied
/// per-replica [`InjectionPlan`] factory (the escape hatch staggered
/// shared-learning experiments use).
enum FleetFaults {
    Choice(FaultChoice),
    PerReplica(Arc<PlanFactory>),
}

impl FleetFaults {
    fn label(&self) -> String {
        match self {
            FleetFaults::Choice(choice) => choice.label(),
            FleetFaults::PerReplica(_) => "per_replica".to_string(),
        }
    }
}

/// Configuration (and builder) for one fleet run.
pub struct FleetConfig {
    replicas: usize,
    ticks: u64,
    base_seed: u64,
    service: ServiceConfig,
    workload: WorkloadChoice,
    policy: PolicyChoice,
    learner: LearnerChoice,
    warm_start: Option<SynopsisSnapshot>,
    mode: ExecutionMode,
    slice: u64,
    gated: bool,
    events: EventPlan,
    reactive: ReactivePlan,
    series_capacity: usize,
    faults: FleetFaults,
    persist_synopsis: Option<PathBuf>,
}

/// Ticks [`FleetConfig::run_to_quiescence`] appends past the last stimulus
/// horizon: enough for a full-service restart (~300 ticks) plus retries and
/// detection lag, so every episode the stimuli can open has room to close.
pub const HEALING_TAIL: u64 = 600;

impl std::fmt::Debug for FleetConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetConfig")
            .field("replicas", &self.replicas)
            .field("ticks", &self.ticks)
            .field("base_seed", &self.base_seed)
            .field("workload", &self.workload.label())
            .field("policy", &self.policy.label())
            .field("learner", &self.learner.label())
            .field("faults", &self.faults.label())
            .field("warm_start", &self.warm_start.as_ref().map(|s| s.len()))
            .field("mode", &self.mode)
            .field("slice", &self.slice)
            .field("gated", &self.gated)
            .field("events", &self.events.labels())
            .field("reactive", &self.reactive.labels())
            .finish_non_exhaustive()
    }
}

impl FleetConfig {
    /// Starts a builder: 4 replicas × 300 ticks of the RUBiS-like default
    /// service under the bidding mix, no injections, no healing, private
    /// (per-replica) learning, parallel execution.
    pub fn builder() -> Self {
        FleetConfig {
            replicas: 4,
            ticks: 300,
            base_seed: 42,
            service: ServiceConfig::rubis_default(),
            workload: WorkloadChoice::default(),
            policy: PolicyChoice::None,
            learner: LearnerChoice::Private,
            warm_start: None,
            mode: ExecutionMode::Parallel { threads: None },
            slice: 1,
            gated: true,
            events: EventPlan::new(),
            reactive: ReactivePlan::new(),
            series_capacity: 100_000,
            faults: FleetFaults::Choice(FaultChoice::default()),
            persist_synopsis: None,
        }
    }

    /// Number of service replicas in the fleet.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Ticks each replica simulates.
    pub fn ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Base seed from which every replica's streams are split.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Service configuration used by every replica (the per-replica RNG
    /// seed inside it is overridden by the fleet's stream splitting).
    pub fn service(mut self, config: ServiceConfig) -> Self {
        self.service = config;
        self
    }

    /// Workload shape every replica runs.  Each replica instantiates its
    /// own [`selfheal_workload::TraceSource`] from the choice, with a seed
    /// split from the fleet's base seed and (for replays) a per-replica
    /// phase shift.
    pub fn workload(mut self, workload: WorkloadChoice) -> Self {
        self.workload = workload;
        self
    }

    /// Synthetic-workload shorthand for [`FleetConfig::workload`].
    pub fn synthetic_workload(self, mix: WorkloadMix, arrivals: ArrivalProcess) -> Self {
        self.workload(WorkloadChoice::synthetic(mix, arrivals))
    }

    /// Healing policy driving each replica.
    pub fn policy(mut self, policy: PolicyChoice) -> Self {
        self.policy = policy;
        self
    }

    /// Where learned synopsis state lives: a private per-replica store, one
    /// lock-shared store, or a sharded store routed by symptom-space region.
    pub fn learner(mut self, learner: LearnerChoice) -> Self {
        self.learner = learner;
        self
    }

    /// Shared vs isolated learning — shorthand for
    /// [`FleetConfig::learner`] with the matching [`LearnerChoice`].
    pub fn topology(self, topology: LearningTopology) -> Self {
        self.learner(topology.learner_choice())
    }

    /// Warm-starts the fleet's learning from a saved snapshot: the store is
    /// restored from the snapshot's experience before the first tick (each
    /// replica gets its own restored copy under private learning), so
    /// previously healed failure signatures are fixed on the first attempt.
    pub fn warm_start(mut self, snapshot: SynopsisSnapshot) -> Self {
        self.warm_start = Some(snapshot);
        self
    }

    /// Parallel worker threads vs the sequential interleaver.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Width of the scheduler's tick slices, in ticks (minimum 1, the
    /// default): how far one replica may run ahead of another between epoch
    /// barriers.  Private-learner outcomes are slice-invariant; larger
    /// slices amortize the barrier when raw throughput matters, while
    /// `slice >= ticks` collapses the run to a single epoch.
    pub fn slice(mut self, slice: u64) -> Self {
        self.slice = slice.max(1);
        self
    }

    /// Schedules one declarative cross-replica event (a
    /// [`EventChoice::FaultStorm`] or [`EventChoice::WorkloadSurge`]); may
    /// be called repeatedly.
    pub fn event(mut self, choice: EventChoice) -> Self {
        self.events.push_choice(choice);
        self
    }

    /// Schedules a batch of declarative cross-replica events.
    pub fn events(mut self, choices: impl IntoIterator<Item = EventChoice>) -> Self {
        for choice in choices {
            self.events.push_choice(choice);
        }
        self
    }

    /// Replaces the event schedule with a full [`EventPlan`] (the escape
    /// hatch for custom [`events::FleetEvent`] implementations).
    pub fn event_plan(mut self, plan: EventPlan) -> Self {
        self.events = plan;
        self
    }

    /// Wires in one declarative reactive chaos engine (a
    /// [`ReactiveChoice::Adversary`] or [`ReactiveChoice::Cascade`]); may
    /// be called repeatedly.  Reactive engines observe the fleet at epoch
    /// barriers every [`reactive::REACTIVE_PERIOD`] ticks and emit actions
    /// for the next window, so their runs stay fingerprint-identical at any
    /// worker count — the run panics unless the configured
    /// [`slice`](FleetConfig::slice) divides the reactive period.
    pub fn reactive(mut self, choice: ReactiveChoice) -> Self {
        self.reactive.push_choice(choice);
        self
    }

    /// Replaces the reactive engines with a full [`ReactivePlan`] (the
    /// escape hatch for custom [`reactive::ReactiveEvent`]
    /// implementations).
    pub fn reactive_plan(mut self, plan: ReactivePlan) -> Self {
        self.reactive = plan;
        self
    }

    /// Disables the store gate's round-robin serialization of
    /// shared-store access for throughput-over-reproducibility runs.
    ///
    /// **Determinism trade-off:** with the gate on (the default), a
    /// tick-sliced parallel shared-learning run is fingerprint-identical to
    /// [`ExecutionMode::Sequential`] at any worker count — but replica `r`
    /// must wait for replicas `0..r` to finish the epoch before touching
    /// the store, so parallel speedup is bounded by how often healers hit
    /// it.  Ungated, replicas access the shared store the moment they need
    /// it: no stalls, full parallel throughput — and the order experience
    /// reaches the store (hence suggest results near drain boundaries)
    /// depends on thread scheduling, so fingerprints may vary run to run.
    /// No experience is ever lost either way; only visibility *timing*
    /// changes.  Private-learner fleets have no shared store and are
    /// unaffected.
    pub fn ungated(mut self) -> Self {
        self.gated = false;
        self
    }

    /// Streams the fleet-wide synopsis store's experience to a JSON-lines
    /// snapshot file *incrementally*: the file is created (with everything
    /// the warm-started store already knows) before the first tick, and
    /// every subsequent batch drain appends its outcomes — so a run killed
    /// mid-flight restores everything drained so far via
    /// [`selfheal_core::snapshot::SynopsisSnapshot::load`].  Requires a
    /// shared learner ([`LearnerChoice::is_shared`]) and a learning policy;
    /// ignored otherwise.
    ///
    /// # Panics
    /// The run panics if the file cannot be created.
    pub fn persist_synopsis(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist_synopsis = Some(path.into());
        self
    }

    /// Metric samples each replica retains.
    pub fn series_capacity(mut self, capacity: usize) -> Self {
        self.series_capacity = capacity.max(1);
        self
    }

    /// The declarative fault schedule every replica runs.  Each replica
    /// instantiates its own [`selfheal_faults::FaultSource`] from the
    /// choice, with a seed split from the fleet's base seed
    /// ([`SeedStream::Faults`]), so stochastic mix streams decorrelate
    /// across replicas while staying pure functions of
    /// `(base_seed, replica)`.
    pub fn faults(mut self, faults: FaultChoice) -> Self {
        self.faults = FleetFaults::Choice(faults);
        self
    }

    /// One injection plan applied identically to every replica (shorthand
    /// for [`FleetConfig::faults`] with [`FaultChoice::Scripted`]).
    pub fn injections(self, plan: InjectionPlan) -> Self {
        self.faults(FaultChoice::Scripted(plan))
    }

    /// A per-replica injection plan (e.g. stagger the same fault so replica
    /// 0 sees it long before replica 1 — the shared-learning experiments).
    pub fn injections_per_replica(
        mut self,
        factory: impl Fn(usize) -> InjectionPlan + Send + Sync + 'static,
    ) -> Self {
        self.faults = FleetFaults::PerReplica(Arc::new(factory));
        self
    }

    /// Builds the engine.
    pub fn build(self) -> FleetEngine {
        FleetEngine { config: self }
    }

    /// Convenience: build and run.
    pub fn run(self) -> FleetOutcome {
        self.build().run()
    }

    /// The last tick at which any configured stimulus — per-replica fault
    /// sources, scheduled cross-replica events, or reactive engines — can
    /// still introduce work, `None` when every stimulus is unbounded (or
    /// absent).  Unbounded sources (horizon `u64::MAX`) are ignored: they
    /// admit no quiesce point.
    pub fn stimulus_horizon(&self) -> Option<u64> {
        let mut horizon: Option<u64> = None;
        let mut observe = |h: u64| {
            if h != u64::MAX {
                horizon = Some(horizon.unwrap_or(0).max(h));
            }
        };
        for replica in 0..self.replicas {
            let h = match &self.faults {
                FleetFaults::Choice(choice) => choice
                    .source_for_replica(
                        split_seed(self.base_seed, replica as u64, SeedStream::Faults),
                        replica as u64,
                    )
                    .horizon(),
                FleetFaults::PerReplica(factory) => factory(replica).horizon(),
            };
            observe(h);
        }
        if let Some(h) = self.events.horizon() {
            observe(h);
        }
        if let Some(h) = self.reactive.horizon() {
            observe(h);
        }
        horizon
    }

    /// Horizon-aware auto-quiesce: runs until one [`HEALING_TAIL`] past the
    /// [`stimulus_horizon`](FleetConfig::stimulus_horizon), replacing
    /// hand-tuned tick counts — the run is exactly long enough for every
    /// episode the stimuli can open to close, however the stimuli are
    /// composed.  Falls back to the configured
    /// [`ticks`](FleetConfig::ticks) when every stimulus is unbounded,
    /// since no finite run can outlast them.
    pub fn run_to_quiescence(self) -> FleetOutcome {
        match self.stimulus_horizon() {
            Some(horizon) => self.ticks(horizon + 1 + HEALING_TAIL).run(),
            None => self.run(),
        }
    }
}

/// One replica's result.
#[derive(Debug, Clone)]
pub struct ReplicaOutcome {
    /// Index of the replica within the fleet (`0..replicas`).
    pub replica: usize,
    /// The replica's full scenario outcome.
    pub outcome: ScenarioOutcome,
}

/// Aggregated result of a fleet run.
pub struct FleetOutcome {
    replicas: Vec<ReplicaOutcome>,
    errors: Vec<ReplicaError>,
    wall: Duration,
    mode: ExecutionMode,
    store: Option<Box<dyn SynopsisStore>>,
    reactive_log: Vec<ReactiveRecord>,
}

impl std::fmt::Debug for FleetOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetOutcome")
            .field("replicas", &self.replicas)
            .field("errors", &self.errors)
            .field("wall", &self.wall)
            .field("mode", &self.mode)
            .field("store", &self.store.as_ref().map(|s| s.kind().label()))
            .field("reactive_log", &self.reactive_log.len())
            .finish()
    }
}

impl FleetOutcome {
    /// Per-replica outcomes, ordered by replica index.  Every replica
    /// appears here unless it panicked mid-run, in which case its
    /// [`ReplicaError`] is in [`FleetOutcome::errors`] instead.
    pub fn replicas(&self) -> &[ReplicaOutcome] {
        &self.replicas
    }

    /// Replicas that panicked mid-run, ordered by replica index.  The
    /// survivors' outcomes are unaffected (aggregate statistics cover the
    /// survivors only).
    pub fn errors(&self) -> &[ReplicaError] {
        &self.errors
    }

    /// Returns `true` when every replica completed its run.
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }

    /// Wall-clock duration of the whole fleet run.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// The execution mode the fleet ran under.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The fleet-wide synopsis store (flushed), when the fleet ran a
    /// learning policy against a shared [`LearnerChoice`] (`Locked` or
    /// `Sharded`) — e.g. to
    /// [`snapshot`](selfheal_core::store::SynopsisStore::snapshot) it for a
    /// later warm start.
    pub fn store(&self) -> Option<&dyn SynopsisStore> {
        self.store.as_deref()
    }

    /// Total simulated ticks across all replicas.
    pub fn total_ticks(&self) -> u64 {
        self.replicas.iter().map(|r| r.outcome.ticks).sum()
    }

    /// Simulated ticks per wall-clock second — the scaling bench's
    /// throughput metric.
    pub fn throughput_ticks_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.total_ticks() as f64 / secs
        }
    }

    /// Fleet-wide goodput: completed / arrived over all replicas.
    pub fn goodput_fraction(&self) -> f64 {
        let arrived: u64 = self.replicas.iter().map(|r| r.outcome.arrived).sum();
        let completed: u64 = self.replicas.iter().map(|r| r.outcome.completed).sum();
        if arrived == 0 {
            1.0
        } else {
            completed as f64 / arrived as f64
        }
    }

    /// Mean of the replicas' SLO-violation fractions.
    pub fn mean_violation_fraction(&self) -> f64 {
        if self.replicas.is_empty() {
            return 0.0;
        }
        self.replicas
            .iter()
            .map(|r| r.outcome.violation_fraction)
            .sum::<f64>()
            / self.replicas.len() as f64
    }

    /// Mean recovery time (ticks) over every recovered episode in the
    /// fleet, `None` when nothing recovered.
    pub fn mean_recovery_ticks(&self) -> Option<f64> {
        let recovered: Vec<u64> = self
            .replicas
            .iter()
            .flat_map(|r| r.outcome.recovery.episodes())
            .filter_map(|e| e.recovery_ticks())
            .collect();
        if recovered.is_empty() {
            None
        } else {
            Some(recovered.iter().sum::<u64>() as f64 / recovered.len() as f64)
        }
    }

    /// Total fix attempts across the fleet.
    pub fn total_fixes_initiated(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.outcome.fixes_initiated)
            .sum()
    }

    /// Total failure episodes across the fleet.
    pub fn total_episodes(&self) -> usize {
        self.replicas.iter().map(|r| r.outcome.recovery.len()).sum()
    }

    /// Every action the reactive engines emitted, in emission order — the
    /// audit trail that lets benches attribute failure episodes to
    /// adversarial injections (empty when no engines were configured).
    pub fn reactive_log(&self) -> &[ReactiveRecord] {
        &self.reactive_log
    }

    /// Per-replica outcome fingerprints (ordered by replica index) — the
    /// determinism tests compare these across runs and fleet sizes.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.outcome.fingerprint())
            .collect()
    }
}

/// Runs a fleet described by a [`FleetConfig`].
#[derive(Debug)]
pub struct FleetEngine {
    config: FleetConfig,
}

impl FleetEngine {
    /// Creates an engine from a finished configuration.
    pub fn new(config: FleetConfig) -> Self {
        FleetEngine { config }
    }

    /// Builds the store backing one replica's healer: a per-replica handle
    /// to the fleet-wide store when one exists (gated into sequential order
    /// when the scheduler runs multiple workers), otherwise a fresh private
    /// store (warm-started from the fleet's snapshot, if any).
    fn build_store(
        &self,
        replica: usize,
        fleet_store: Option<&dyn SynopsisStore>,
        gate: Option<&Arc<StoreGate>>,
    ) -> Box<dyn SynopsisStore> {
        match (fleet_store, gate) {
            (Some(store), Some(gate)) => Box::new(scheduler::GatedStore::new(
                store.clone_store(),
                replica,
                Arc::clone(gate),
            )),
            (Some(store), None) => store.clone_store(),
            (None, _) => LearnerChoice::Private.build_store_warm(
                self.config
                    .policy
                    .synopsis_kind()
                    .expect("learning policy has a kind"),
                self.config.warm_start.as_ref(),
            ),
        }
    }

    /// Builds the runner for one replica, with every RNG stream split
    /// deterministically from the fleet's base seed.
    fn build_replica(
        &self,
        replica: usize,
        fleet_store: Option<&dyn SynopsisStore>,
        gate: Option<&Arc<StoreGate>>,
    ) -> ScenarioRunner<Box<dyn Healer>> {
        let config = &self.config;
        let workload = config.workload.source_for_replica(
            split_seed(config.base_seed, replica as u64, SeedStream::Workload),
            replica as u64,
        );
        let faults: Box<dyn FaultSource> = match &config.faults {
            FleetFaults::Choice(choice) => choice.source_for_replica(
                split_seed(config.base_seed, replica as u64, SeedStream::Faults),
                replica as u64,
            ),
            FleetFaults::PerReplica(factory) => Box::new(ScriptedSource::new(factory(replica))),
        };
        let store = config
            .policy
            .shares_learning()
            .then(|| self.build_store(replica, fleet_store, gate));
        self.assemble_replica(replica, workload, faults, store)
    }

    /// Builds a standalone runner for replica index `replica` — the public
    /// replica-construction surface the resident daemon's supervisor uses
    /// to add, restart, and warm-start replicas *outside* a batch
    /// [`FleetEngine::run`].  Seeds are split exactly as [`run`](FleetEngine::run) splits
    /// them, so the replica's simulated streams are the same pure function
    /// of `(base_seed, replica)`.
    ///
    /// When `store` is given and the policy learns, the healer is built
    /// against a [`clone_store`](SynopsisStore::clone_store) handle of it
    /// (ungated — the supervisor serializes access at its own epoch
    /// barriers); a learning policy with no `store` gets a private
    /// warm-started store, and non-learning policies ignore `store`.
    pub fn replica_runner(
        &self,
        replica: usize,
        store: Option<&dyn SynopsisStore>,
    ) -> ScenarioRunner<Box<dyn Healer>> {
        self.replica_runner_with(replica, None, None, store)
    }

    /// [`replica_runner`](Self::replica_runner) with per-replica overrides:
    /// `faults`/`workload` replace the fleet-wide choices for this replica
    /// only (still seeded from the fleet's split streams) — how the daemon
    /// gives each added replica its own fault profile and applies
    /// `RECONFIGURE`.
    pub fn replica_runner_with(
        &self,
        replica: usize,
        faults: Option<&FaultChoice>,
        workload: Option<&WorkloadChoice>,
        store: Option<&dyn SynopsisStore>,
    ) -> ScenarioRunner<Box<dyn Healer>> {
        let config = &self.config;
        let workload_source = workload.unwrap_or(&config.workload).source_for_replica(
            split_seed(config.base_seed, replica as u64, SeedStream::Workload),
            replica as u64,
        );
        let fault_seed = split_seed(config.base_seed, replica as u64, SeedStream::Faults);
        let fault_source: Box<dyn FaultSource> = match faults {
            Some(choice) => choice.source_for_replica(fault_seed, replica as u64),
            None => match &config.faults {
                FleetFaults::Choice(choice) => {
                    choice.source_for_replica(fault_seed, replica as u64)
                }
                FleetFaults::PerReplica(factory) => Box::new(ScriptedSource::new(factory(replica))),
            },
        };
        let store = (config.policy.shares_learning())
            .then(|| store.map(|s| s.clone_store()))
            .flatten();
        self.assemble_replica(replica, workload_source, fault_source, store)
    }

    /// Common replica assembly: seeds the service, wires the healer to the
    /// provided store handle (or a private warm-started one), and caps the
    /// series history.
    fn assemble_replica(
        &self,
        replica: usize,
        workload: Box<dyn TraceSource>,
        faults: Box<dyn FaultSource>,
        store: Option<Box<dyn SynopsisStore>>,
    ) -> ScenarioRunner<Box<dyn Healer>> {
        let config = &self.config;
        let mut service_config = config.service.clone();
        service_config.seed = split_seed(config.base_seed, replica as u64, SeedStream::Service);
        let service = MultiTierService::new(service_config);
        let schema = service.schema().clone();
        let targets = config.service.slo_targets();
        let healer = if config.policy.shares_learning() {
            let store = store.unwrap_or_else(|| {
                LearnerChoice::Private.build_store_warm(
                    config
                        .policy
                        .synopsis_kind()
                        .expect("learning policy has a kind"),
                    config.warm_start.as_ref(),
                )
            });
            config.policy.build_healer_stored(&schema, targets, store)
        } else {
            config.policy.build_healer(&schema, targets)
        };
        ScenarioRunner::with_faults(service, workload, faults, healer)
            .with_series_capacity(config.series_capacity)
    }

    /// Builds the fleet-wide synopsis store this configuration calls for —
    /// `Some` when the learner is shared ([`LearnerChoice::is_shared`]) and
    /// the policy learns, warm-started from the config's snapshot and
    /// switched to incremental persistence when
    /// [`FleetConfig::persist_synopsis`] was set.  [`run`](Self::run) calls
    /// this internally; the resident daemon calls it once at boot and keeps
    /// the store alive across epochs and replica restarts.
    ///
    /// # Panics
    /// Panics when the persistence file cannot be created (same contract as
    /// [`FleetConfig::persist_synopsis`]).
    pub fn build_shared_store(&self) -> Option<Box<dyn SynopsisStore>> {
        let config = &self.config;
        let mut store: Option<Box<dyn SynopsisStore>> =
            if config.learner.is_shared() && config.policy.shares_learning() {
                Some(
                    config.learner.build_store_warm(
                        config
                            .policy
                            .synopsis_kind()
                            .expect("learning policy has a kind"),
                        config.warm_start.as_ref(),
                    ),
                )
            } else {
                None
            };
        if let (Some(path), Some(store)) = (&config.persist_synopsis, store.as_mut()) {
            store
                .persist_to(path)
                .unwrap_or_else(|err| panic!("cannot persist synopsis to {path:?}: {err}"));
        }
        store
    }

    /// Runs the fleet through the tick-sliced scheduler and aggregates the
    /// results.  Replicas that panic mid-run surface as
    /// [`FleetOutcome::errors`]; the survivors complete normally.
    pub fn run(self) -> FleetOutcome {
        let config = &self.config;
        let store = self.build_shared_store();
        let shape = FleetShape {
            replicas: config.replicas,
            ticks: config.ticks,
            base_seed: config.base_seed,
        };
        let schedule = config.events.resolve(&shape);
        let mut reactive = (!config.reactive.is_empty()).then(|| {
            assert!(
                reactive::REACTIVE_PERIOD.is_multiple_of(config.slice),
                "reactive engines evaluate at {}-tick barriers, so the slice \
                 ({}) must divide the reactive period — use a slice of 1, 2, \
                 4, 8, 16, 32, or 64",
                reactive::REACTIVE_PERIOD,
                config.slice,
            );
            ReactiveContext::new(config.reactive.clone())
        });

        let workers = match config.mode {
            ExecutionMode::Sequential => 1,
            ExecutionMode::Parallel { threads } => threads
                .unwrap_or_else(|| {
                    thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
                .clamp(1, config.replicas.max(1)),
        };
        // The gate exists only when parallel workers could race on a shared
        // store (and the config still wants reproducibility over raw
        // throughput — see `FleetConfig::ungated`); a single sweeper
        // already produces the reference order.
        let gate = (workers > 1 && store.is_some() && config.gated)
            .then(|| Arc::new(StoreGate::new(config.replicas)));

        let runners: Vec<_> = (0..config.replicas)
            .map(|r| self.build_replica(r, store.as_deref(), gate.as_ref()))
            .collect();

        // lint:allow(nondeterminism): wall-clock duration is reported, not
        // simulated; fingerprints are computed from tick state alone.
        let start = Instant::now();
        let results = scheduler::run_epochs(
            runners,
            config.ticks,
            config.slice,
            workers,
            gate,
            &schedule,
            reactive.as_mut(),
        );
        // The final drain is part of the run: flush *inside* the timed
        // region so throughput numbers include it.
        if let Some(store) = &store {
            store.flush();
        }
        let wall = start.elapsed();

        let mut replicas = Vec::with_capacity(results.len());
        let mut errors = Vec::new();
        for (replica, result) in results.into_iter().enumerate() {
            match result {
                Ok(outcome) => replicas.push(ReplicaOutcome { replica, outcome }),
                Err(error) => errors.push(error),
            }
        }
        FleetOutcome {
            replicas,
            errors,
            wall,
            mode: self.config.mode,
            store,
            reactive_log: reactive.map(ReactiveContext::into_log).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_core::synopsis::SynopsisKind;
    use selfheal_faults::{FaultKind, FaultTarget, InjectionPlanBuilder};

    fn tiny_fleet() -> FleetConfig {
        FleetConfig::builder()
            .service(ServiceConfig::tiny())
            .synthetic_workload(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            )
            .replicas(3)
            .ticks(80)
    }

    #[test]
    fn healthy_fleet_runs_all_replicas() {
        let outcome = tiny_fleet().run();
        assert_eq!(outcome.replicas().len(), 3);
        assert_eq!(outcome.total_ticks(), 240);
        assert!(outcome.goodput_fraction() > 0.99);
        assert_eq!(outcome.total_episodes(), 0);
        assert!(outcome.store().is_none());
        assert!(outcome.throughput_ticks_per_sec() > 0.0);
    }

    #[test]
    fn sequential_and_parallel_agree_when_isolated() {
        let plan = |_: usize| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    20,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        };
        let sequential = tiny_fleet()
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .injections_per_replica(plan)
            .mode(ExecutionMode::Sequential)
            .run();
        let parallel = tiny_fleet()
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .injections_per_replica(plan)
            .mode(ExecutionMode::Parallel { threads: Some(2) })
            .run();
        assert_eq!(sequential.fingerprints(), parallel.fingerprints());
    }

    #[test]
    fn shared_topology_exposes_the_flushed_synopsis() {
        let plan = |_: usize| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    20,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        };
        let outcome = tiny_fleet()
            .ticks(250)
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .topology(LearningTopology::shared())
            .injections_per_replica(plan)
            .run();
        let store = outcome.store().expect("shared store present");
        assert_eq!(store.pending_updates(), 0, "flushed after the run");
        assert!(
            store.correct_fixes_learned() >= 1,
            "the fleet learned something"
        );
        assert!(outcome.total_fixes_initiated() >= 3);
    }

    #[test]
    fn non_learning_policies_ignore_the_shared_topology() {
        let outcome = tiny_fleet().topology(LearningTopology::shared()).run();
        assert!(outcome.store().is_none());
    }

    #[test]
    fn sharded_learner_exposes_a_store_and_learns() {
        let plan = |_: usize| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    20,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        };
        let outcome = tiny_fleet()
            .ticks(250)
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .learner(LearnerChoice::sharded(4))
            .injections_per_replica(plan)
            .run();
        let store = outcome.store().expect("sharded store present");
        assert_eq!(store.kind(), SynopsisKind::NearestNeighbor);
        assert_eq!(store.pending_updates(), 0, "flushed after the run");
        assert!(store.correct_fixes_learned() >= 1);
    }

    #[test]
    fn warm_started_private_replicas_skip_the_trial_and_error() {
        let plan = |_: usize| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    40,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        };
        let fleet = || {
            tiny_fleet()
                .ticks(300)
                .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
                .learner(LearnerChoice::locked())
                .injections_per_replica(plan)
        };
        let cold = fleet().run();
        let snapshot = cold.store().expect("learning store").snapshot();
        assert!(snapshot.positives() >= 1, "cold fleet learned something");

        // Warm start an isolated fleet from the shared fleet's experience:
        // every replica restores its own copy before the first tick.
        let warm = fleet()
            .learner(LearnerChoice::Private)
            .warm_start(snapshot)
            .run();
        let mean_attempts = |outcome: &FleetOutcome| {
            let attempts: Vec<f64> = outcome
                .replicas()
                .iter()
                .filter_map(|r| {
                    r.outcome
                        .recovery
                        .episodes()
                        .iter()
                        .find(|e| e.primary_fault() == Some(FaultKind::BufferContention))
                        .map(|e| e.fixes_attempted.len() as f64)
                })
                .collect();
            attempts.iter().sum::<f64>() / attempts.len().max(1) as f64
        };
        assert!(
            mean_attempts(&warm) <= mean_attempts(&cold),
            "warm {} vs cold {}",
            mean_attempts(&warm),
            mean_attempts(&cold)
        );
    }
}
