//! The tick-sliced fleet scheduler: worker threads advance every replica
//! one tick-slice at a time through an epoch barrier.
//!
//! The previous parallel engine ran each replica to completion on a worker
//! thread, which made two things impossible: cross-replica events (by the
//! time replica 7 started, replica 0 had already finished) and reproducible
//! shared learning (the order replicas taught the shared store depended on
//! thread scheduling).  The scheduler replaces it with a deterministic
//! per-epoch sweep, the fleet analogue of a cyclic block-coordinate pass:
//!
//! * Time is cut into **epochs** of `slice` ticks (default 1).  Within an
//!   epoch, workers claim replicas off an atomic counter in index order and
//!   advance each claimed replica through the epoch's ticks; a barrier
//!   separates epochs, so the whole fleet lives concurrently and no replica
//!   ever runs more than `slice` ticks ahead of another.
//! * Cross-replica [`FleetEvent`](crate::events::FleetEvent)s are resolved
//!   into per-replica actions up front and applied by whichever worker
//!   steps the replica through the action's exact tick — event timing is
//!   therefore independent of worker count *and* slice width.
//! * With a fleet-shared store, every replica's store accesses go through a
//!   store gate: replica `r`'s suggests/records wait until replicas
//!   `0..r` have finished the current epoch.  The store therefore observes
//!   *exactly* the sequential round-robin interleave, and a tick-sliced
//!   parallel run is fingerprint-identical to `run_sequential` at any
//!   worker count (`tests/scheduler.rs` asserts this) — while the
//!   simulation work of gated replicas still overlaps (replica `r+1` can
//!   serve traffic while replica `r` retrains).
//! * A panicking replica no longer aborts the fleet: the panic is caught at
//!   the slice boundary, surfaced as a [`ReplicaError`] in the fleet
//!   outcome, and the survivors keep running (the replica slot is simply
//!   retired).
//!
//! With `slice >= ticks` there is a single epoch and (for private learners)
//! the scheduler degenerates to the old run-to-completion behaviour; shared
//! stores keep the deterministic ordering at every slice width, because
//! reproducible fleet learning is the point.

use crate::events::{ActionSchedule, ReplicaAction};
use crate::reactive::{FleetView, ReactiveContext, ReplicaView, REACTIVE_PERIOD};
use selfheal_core::snapshot::SynopsisSnapshot;
use selfheal_core::store::SynopsisStore;
use selfheal_core::synopsis::{Learner, SynopsisKind};
use selfheal_faults::FixKind;
use selfheal_sim::scenario::{Healer, ScenarioOutcome, ScenarioRunner};
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::thread;

/// A replica that died mid-run: its index and the panic payload, surfaced
/// in the fleet outcome instead of aborting the surviving replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaError {
    /// Index of the replica that failed.
    pub replica: usize,
    /// Human-readable panic message.
    pub message: String,
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica {} panicked: {}", self.replica, self.message)
    }
}

impl std::error::Error for ReplicaError {}

/// Extracts a printable message from a caught panic payload — shared with
/// the resident daemon's supervisor, which catches replica panics the same
/// way this scheduler does.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// StoreGate
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct GateState {
    /// Smallest replica index whose current epoch slice is not yet
    /// complete — the only replica allowed to touch the shared store.
    next: usize,
    done: Vec<bool>,
}

/// Orders shared-store access within an epoch: replica `r` may touch the
/// store only once replicas `0..r` have completed their slice, reproducing
/// the sequential round-robin interleave under parallel execution.
#[derive(Debug)]
pub(crate) struct StoreGate {
    state: Mutex<GateState>,
    turn: Condvar,
}

impl StoreGate {
    pub(crate) fn new(replicas: usize) -> Self {
        StoreGate {
            state: Mutex::new(GateState {
                next: 0,
                done: vec![false; replicas],
            }),
            turn: Condvar::new(),
        }
    }

    /// Blocks until every replica below `replica` has completed the current
    /// epoch.  Called by [`GatedStore`] before each store operation; the
    /// operations of the slice being stepped keep the turn (`next` stays at
    /// `replica` until the slice completes).
    fn wait_for(&self, replica: usize) {
        let mut state = self.state.lock().expect("store gate poisoned");
        while state.next < replica {
            state = self.turn.wait(state).expect("store gate poisoned");
        }
    }

    /// Marks `replica`'s slice complete for this epoch and hands the turn
    /// to the next incomplete replica.
    fn complete(&self, replica: usize) {
        let mut state = self.state.lock().expect("store gate poisoned");
        state.done[replica] = true;
        while state.next < state.done.len() && state.done[state.next] {
            state.next += 1;
        }
        self.turn.notify_all();
    }

    /// Rearms the gate for the next epoch (called between the epoch
    /// barriers, when no replica is stepping).
    fn reset(&self) {
        let mut state = self.state.lock().expect("store gate poisoned");
        state.done.fill(false);
        state.next = 0;
    }
}

/// A per-replica handle to the fleet-shared store that waits for the
/// replica's turn (as defined by the [`StoreGate`]) before every learning
/// operation, making parallel shared-store runs replay the sequential
/// interleave exactly.  Lifecycle operations (flush, snapshot, restore) are
/// not gated — the engine only calls them outside epochs.
pub(crate) struct GatedStore {
    inner: Box<dyn SynopsisStore>,
    replica: usize,
    gate: Arc<StoreGate>,
}

impl GatedStore {
    pub(crate) fn new(inner: Box<dyn SynopsisStore>, replica: usize, gate: Arc<StoreGate>) -> Self {
        GatedStore {
            inner,
            replica,
            gate,
        }
    }
}

impl std::fmt::Debug for GatedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatedStore")
            .field("replica", &self.replica)
            .finish_non_exhaustive()
    }
}

impl Learner for GatedStore {
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        self.gate.wait_for(self.replica);
        self.inner.suggest(symptoms)
    }

    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        self.gate.wait_for(self.replica);
        self.inner.suggest_excluding(symptoms, excluded)
    }

    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        self.gate.wait_for(self.replica);
        self.inner.record(symptoms, fix, success);
    }

    fn correct_fixes_learned(&self) -> usize {
        self.gate.wait_for(self.replica);
        self.inner.correct_fixes_learned()
    }
}

// lint:allow(choice-mirror): GatedStore is the scheduler-internal barrier
// wrapper around whichever store LearnerChoice built — it is plumbing, not
// a configurable scenario, so it has no enum variant by design.
impl SynopsisStore for GatedStore {
    fn kind(&self) -> SynopsisKind {
        self.inner.kind()
    }

    fn flush(&self) {
        self.inner.flush();
    }

    fn pending_updates(&self) -> usize {
        self.inner.pending_updates()
    }

    fn snapshot(&self) -> SynopsisSnapshot {
        self.inner.snapshot()
    }

    fn restore(&mut self, snapshot: &SynopsisSnapshot) {
        self.inner.restore(snapshot);
    }

    fn clone_store(&self) -> Box<dyn SynopsisStore> {
        Box::new(GatedStore {
            inner: self.inner.clone_store(),
            replica: self.replica,
            gate: Arc::clone(&self.gate),
        })
    }

    fn persist_to(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        self.inner.persist_to(path)
    }
}

// ---------------------------------------------------------------------------
// The epoch loop
// ---------------------------------------------------------------------------

/// One replica's slot: the live runner until it completes (or `None` plus
/// an error once it has panicked), and the reactive actions scheduled
/// against it for upcoming ticks.
struct ReplicaSlot {
    runner: Option<ScenarioRunner<Box<dyn Healer>>>,
    error: Option<ReplicaError>,
    pending: BTreeMap<u64, Vec<ReplicaAction>>,
}

/// Everything one worker needs to sweep epochs.
struct SweepContext<'a> {
    slots: &'a [Mutex<ReplicaSlot>],
    next: &'a AtomicUsize,
    gate: Option<&'a Arc<StoreGate>>,
    schedule: &'a ActionSchedule,
    ticks: u64,
    slice: u64,
}

impl SweepContext<'_> {
    fn epochs(&self) -> u64 {
        self.ticks.div_ceil(self.slice)
    }

    /// Claims and advances replicas through epoch `epoch` until the counter
    /// runs dry.  Panics inside a replica's step are caught here and retire
    /// the slot; the gate turn is always handed on so siblings never stall
    /// behind a dead replica.
    fn sweep_epoch(&self, epoch: u64) {
        let start = epoch * self.slice;
        let end = (start + self.slice).min(self.ticks);
        loop {
            let replica = self.next.fetch_add(1, Ordering::SeqCst);
            if replica >= self.slots.len() {
                break;
            }
            // `into_inner` on poison: a slot mutex can only be poisoned by a
            // panic in this very function, which catch_unwind below already
            // contains — but never let one dead replica take down the sweep.
            let mut slot = self.slots[replica]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(mut runner) = slot.runner.take() {
                // Reactive actions due inside this epoch window (barrier
                // evaluation only ever schedules into the next window, so
                // nothing earlier can be pending).
                let later = slot.pending.split_off(&end);
                let mut due = std::mem::replace(&mut slot.pending, later);
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    for tick in start..end {
                        let reactive = due.remove(&tick).unwrap_or_default();
                        for action in self
                            .schedule
                            .actions_for(replica, tick)
                            .iter()
                            .chain(reactive.iter())
                        {
                            match action {
                                ReplicaAction::Inject(fault) => runner.inject(fault.clone()),
                                ReplicaAction::Surge { factor, until_tick } => {
                                    runner.apply_surge(*factor, *until_tick)
                                }
                            }
                        }
                        runner.step();
                    }
                    runner
                }));
                match stepped {
                    Ok(runner) => slot.runner = Some(runner),
                    Err(payload) => {
                        slot.error = Some(ReplicaError {
                            replica,
                            message: panic_message(payload),
                        });
                    }
                }
            }
            drop(slot);
            if let Some(gate) = self.gate {
                gate.complete(replica);
            }
        }
    }
}

/// Builds the [`FleetView`] the reactive engines observe at a barrier:
/// every live replica has completed exactly `tick` ticks, so the view is a
/// pure function of the run so far.  Called only between epochs (no worker
/// holds a slot lock).
fn fleet_view(slots: &[Mutex<ReplicaSlot>], tick: u64) -> FleetView {
    let replicas = slots
        .iter()
        .enumerate()
        .map(|(replica, slot)| {
            let slot = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            match &slot.runner {
                Some(runner) => {
                    let recovery = runner.recovery();
                    let recent: Vec<u64> = recovery
                        .episodes()
                        .iter()
                        .rev()
                        .filter_map(|e| e.recovery_ticks())
                        .take(5)
                        .collect();
                    ReplicaView {
                        replica,
                        ticks: runner.ticks_run(),
                        retired: false,
                        open_episodes: usize::from(recovery.in_episode()),
                        episodes: recovery.len(),
                        recent_mean_recovery: (!recent.is_empty())
                            .then(|| recent.iter().sum::<u64>() as f64 / recent.len() as f64),
                        fixes_initiated: runner.fixes_initiated(),
                        restarts: 0,
                    }
                }
                None => ReplicaView::retired(replica),
            }
        })
        .collect();
    FleetView { tick, replicas }
}

/// One reactive barrier: observe the fleet, run the engines, and schedule
/// the emitted actions into the target replicas' pending maps (they apply
/// from `tick`, the first tick of the next epoch window).
fn evaluate_reactive(reactive: &mut ReactiveContext, slots: &[Mutex<ReplicaSlot>], tick: u64) {
    let view = fleet_view(slots, tick);
    for (replica, action) in reactive.evaluate(&view) {
        let mut slot = slots[replica]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        slot.pending.entry(tick).or_default().push(action);
    }
}

/// Drives `runners` for `ticks` ticks in epochs of `slice` ticks across
/// `workers` OS threads (1 = the calling thread, no spawning), applying the
/// resolved event `schedule` at exact ticks and serializing shared-store
/// access through `gate` when one is given.
///
/// When a `reactive` context is given, its engines are evaluated at tick 0
/// and at every epoch barrier landing on a [`REACTIVE_PERIOD`] multiple —
/// the caller must ensure `slice` divides the period so slice-1 and
/// slice-64 runs observe identical view sequences.
///
/// Returns one entry per replica, in index order: the outcome, or the
/// [`ReplicaError`] describing the panic that retired it.
pub(crate) fn run_epochs(
    runners: Vec<ScenarioRunner<Box<dyn Healer>>>,
    ticks: u64,
    slice: u64,
    workers: usize,
    gate: Option<Arc<StoreGate>>,
    schedule: &ActionSchedule,
    mut reactive: Option<&mut ReactiveContext>,
) -> Vec<Result<ScenarioOutcome, ReplicaError>> {
    let slots: Vec<Mutex<ReplicaSlot>> = runners
        .into_iter()
        .map(|runner| {
            Mutex::new(ReplicaSlot {
                runner: Some(runner),
                error: None,
                pending: BTreeMap::new(),
            })
        })
        .collect();
    let next = AtomicUsize::new(0);
    let context = SweepContext {
        slots: &slots,
        next: &next,
        gate: gate.as_ref(),
        schedule,
        ticks,
        slice: slice.max(1),
    };

    // Initial reactive barrier: the engines see the untouched fleet at tick
    // 0 and may act from the very first tick.
    if let Some(reactive) = reactive.as_deref_mut() {
        evaluate_reactive(reactive, &slots, 0);
    }
    // The barrier tick reached after `epoch` completes; reactive engines
    // run there only on REACTIVE_PERIOD multiples strictly inside the run.
    let reactive_due = |epoch: u64| {
        let tick = ((epoch + 1) * context.slice).min(ticks);
        (tick < ticks && tick.is_multiple_of(REACTIVE_PERIOD)).then_some(tick)
    };

    let workers = workers.clamp(1, slots.len().max(1));
    if workers == 1 {
        // The sequential interleaver: one sweep per epoch on the calling
        // thread, no barrier needed.
        for epoch in 0..context.epochs() {
            context.sweep_epoch(epoch);
            next.store(0, Ordering::SeqCst);
            if let Some(gate) = &gate {
                gate.reset();
            }
            if let (Some(reactive), Some(tick)) = (reactive.as_deref_mut(), reactive_due(epoch)) {
                evaluate_reactive(reactive, &slots, tick);
            }
        }
    } else {
        let barrier = Barrier::new(workers);
        let reactive_cell = Mutex::new(reactive);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    for epoch in 0..context.epochs() {
                        context.sweep_epoch(epoch);
                        // Two-phase barrier: everyone finishes the epoch,
                        // the leader rearms the claim counter and the gate
                        // and runs the reactive engines (every worker is
                        // parked at the second wait, so the fleet state is
                        // frozen), then everyone enters the next epoch.
                        if barrier.wait().is_leader() {
                            next.store(0, Ordering::SeqCst);
                            if let Some(gate) = context.gate {
                                gate.reset();
                            }
                            let mut guard = reactive_cell
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                            if let (Some(reactive), Some(tick)) =
                                (guard.as_deref_mut(), reactive_due(epoch))
                            {
                                evaluate_reactive(reactive, &slots, tick);
                            }
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    slots
        .into_iter()
        .map(|slot| {
            let slot = slot
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match (slot.runner, slot.error) {
                (Some(runner), _) => Ok(runner.outcome()),
                (None, Some(error)) => Err(error),
                (None, None) => unreachable!("a replica is either live or errored"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventPlan;
    use selfheal_core::store::LockedStore;
    use selfheal_faults::{FixAction, InjectionPlan};
    use selfheal_sim::service::TickOutcome;
    use selfheal_sim::{MultiTierService, ServiceConfig};
    use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

    /// A healer that panics once its replica reaches a given tick.
    #[derive(Debug)]
    struct PanicAt {
        tick: u64,
        seen: u64,
    }

    impl Healer for PanicAt {
        fn name(&self) -> &str {
            "panic_at"
        }

        fn observe(&mut self, _outcome: &TickOutcome) -> Vec<FixAction> {
            if self.seen == self.tick {
                panic!("synthetic replica failure at tick {}", self.tick);
            }
            self.seen += 1;
            Vec::new()
        }
    }

    fn runner(healer: Box<dyn Healer>) -> ScenarioRunner<Box<dyn Healer>> {
        let service = MultiTierService::new(ServiceConfig::tiny());
        let workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 20.0 },
            7,
        );
        ScenarioRunner::new(service, workload, InjectionPlan::empty(), healer)
    }

    fn empty_schedule(replicas: usize) -> ActionSchedule {
        EventPlan::new().resolve(&crate::events::FleetShape {
            replicas,
            ticks: 100,
            base_seed: 0,
        })
    }

    #[test]
    fn a_panicking_replica_is_retired_without_aborting_the_fleet() {
        let runners = vec![
            runner(Box::new(selfheal_sim::scenario::NoHealing)),
            runner(Box::new(PanicAt { tick: 13, seen: 0 })),
            runner(Box::new(selfheal_sim::scenario::NoHealing)),
        ];
        let results = run_epochs(runners, 40, 1, 2, None, &empty_schedule(3), None);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().ticks, 40, "survivor 0 ran on");
        assert_eq!(results[2].as_ref().unwrap().ticks, 40, "survivor 2 ran on");
        let error = results[1].as_ref().unwrap_err();
        assert_eq!(error.replica, 1);
        assert!(
            error.message.contains("synthetic replica failure"),
            "panic payload surfaced: {}",
            error.message
        );
    }

    /// A healer that consults its (gated) store on every tick — the worst
    /// case for a gate that fails to hand the turn past a dead replica.
    struct TouchStore {
        store: Box<dyn SynopsisStore>,
        touches: u64,
    }

    impl Healer for TouchStore {
        fn name(&self) -> &str {
            "touch_store"
        }

        fn observe(&mut self, _outcome: &TickOutcome) -> Vec<FixAction> {
            let _ = self.store.suggest(&[1.0, 2.0, 3.0]);
            self.touches += 1;
            Vec::new()
        }
    }

    #[test]
    fn a_panicking_replica_does_not_stall_gated_siblings() {
        let gate = Arc::new(StoreGate::new(3));
        let store = LockedStore::new(SynopsisKind::NearestNeighbor);
        let runners = (0..3)
            .map(|replica| {
                if replica == 0 {
                    runner(Box::new(PanicAt { tick: 5, seen: 0 }))
                } else {
                    // Survivors consult the gated store every single tick:
                    // if the dead replica kept the turn, they would block
                    // forever and this test would hang.
                    runner(Box::new(TouchStore {
                        store: Box::new(GatedStore::new(
                            Box::new(store.clone()),
                            replica,
                            Arc::clone(&gate),
                        )),
                        touches: 0,
                    }))
                }
            })
            .collect();
        let results = run_epochs(
            runners,
            30,
            1,
            3,
            Some(Arc::clone(&gate)),
            &empty_schedule(3),
            None,
        );
        assert!(results[0].is_err());
        assert_eq!(results[1].as_ref().unwrap().ticks, 30);
        assert_eq!(results[2].as_ref().unwrap().ticks, 30);
    }

    #[test]
    fn slice_widths_partition_the_run_exactly() {
        for slice in [1, 7, 64, 1000] {
            let runners = vec![runner(Box::new(selfheal_sim::scenario::NoHealing))];
            let results = run_epochs(runners, 50, slice, 1, None, &empty_schedule(1), None);
            assert_eq!(results[0].as_ref().unwrap().ticks, 50, "slice {slice}");
        }
    }
}
