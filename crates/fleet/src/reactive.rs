//! Reactive chaos: state-observing events evaluated at epoch barriers.
//!
//! Every stimulus in [`crate::events`] is *scripted* — resolved into
//! per-replica actions before tick 0, blind to how the fleet actually
//! fares.  A [`ReactiveEvent`] instead runs **at the scheduler's epoch
//! barriers** with read access to a [`FleetView`] (per-replica open
//! episodes, recent MTTR, restart counts, cumulative ticks) and emits
//! [`ReplicaAction`]s for the *next* epoch.  Because the barrier is the one
//! point where the whole fleet's state is deterministic — every replica has
//! completed exactly the same tick — reactive runs stay fingerprint-
//! identical at any worker count, and at any slice width that divides
//! [`REACTIVE_PERIOD`] (the engine enforces this).
//!
//! Two engines ship with the crate, mirroring the declarative
//! [`ReactiveChoice`] recipes:
//!
//! * [`AdversarySource`] — weakest-replica targeting: every reactive
//!   barrier, inject a fault into the replica with the worst open-episode
//!   count (deterministic tie-break by lowest id).  The forcing function
//!   for the paper's claim: under an adversary that piles onto whoever is
//!   already failing, shared fix synopses must out-heal isolated learners.
//! * [`CascadeEvent`] — correlated failure propagation along a small
//!   service-dependency ring: a replica *entering* a failure episode seeds
//!   a fault in its dependent next epoch, bounded by an injection budget.
//!
//! # Implementing the trait
//!
//! ```
//! use selfheal_fleet::events::ReplicaAction;
//! use selfheal_fleet::reactive::{FleetView, ReactiveEvent, ReplicaView};
//! use selfheal_faults::{FaultId, FaultKind, FaultSpec, FaultTarget};
//!
//! /// Kicks every replica that is already down — a pile-on adversary.
//! #[derive(Debug, Clone)]
//! struct PileOn {
//!     until_tick: u64,
//! }
//!
//! impl ReactiveEvent for PileOn {
//!     fn label(&self) -> String {
//!         "pile_on".to_string()
//!     }
//!
//!     fn on_epoch(&mut self, view: &FleetView) -> Vec<(usize, ReplicaAction)> {
//!         if view.tick >= self.until_tick {
//!             return Vec::new();
//!         }
//!         view.replicas
//!             .iter()
//!             .filter(|r| r.open_episodes > 0)
//!             .map(|r| {
//!                 // The id is provisional; the engine re-stamps every
//!                 // reactive injection with a unique id.
//!                 (
//!                     r.replica,
//!                     ReplicaAction::Inject(FaultSpec::new(
//!                         FaultId(0),
//!                         FaultKind::BufferContention,
//!                         FaultTarget::DatabaseTier,
//!                         0.8,
//!                     )),
//!                 )
//!             })
//!             .collect()
//!     }
//!
//!     fn horizon(&self) -> u64 {
//!         self.until_tick.saturating_sub(1)
//!     }
//!
//!     fn clone_box(&self) -> Box<dyn ReactiveEvent> {
//!         Box::new(self.clone())
//!     }
//! }
//!
//! let mut event = PileOn { until_tick: 1000 };
//! let view = FleetView {
//!     tick: 64,
//!     replicas: vec![ReplicaView {
//!         replica: 0,
//!         ticks: 64,
//!         retired: false,
//!         open_episodes: 1,
//!         episodes: 1,
//!         recent_mean_recovery: None,
//!         fixes_initiated: 2,
//!         restarts: 0,
//!     }],
//! };
//! assert_eq!(event.on_epoch(&view).len(), 1);
//! ```

use crate::events::ReplicaAction;
use selfheal_core::harness::ReactiveChoice;
use selfheal_faults::id_space;
use selfheal_faults::injection::default_target;
use selfheal_faults::{FaultId, FaultKind, FaultSpec};

/// Ticks between reactive evaluations.  Engines observe the fleet only at
/// epoch barriers whose tick is a multiple of this period (plus one initial
/// evaluation at tick 0), so a slice-1 run and a slice-64 run see the exact
/// same sequence of views — the engine requires the configured slice to
/// divide this period whenever reactive events are present.
pub const REACTIVE_PERIOD: u64 = 64;

/// Id namespace for reactively-injected faults, disjoint from scripted
/// plans, mix/sweep/season/operator sources, surge requests, and storms —
/// see [`selfheal_faults::id_space`] for the lane manifest.
pub const REACTIVE_FAULT_ID_BASE: u64 = id_space::lane_base(id_space::REACTIVE_ID_BIT);

/// One replica's state as observable at an epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaView {
    /// Index of the replica within the fleet.
    pub replica: usize,
    /// Ticks the replica has simulated so far.
    pub ticks: u64,
    /// `true` when the replica panicked and was retired — its remaining
    /// fields are frozen at zero and events should not target it.
    pub retired: bool,
    /// Failure episodes currently open (a batch replica has at most one;
    /// the resident daemon may report more).
    pub open_episodes: usize,
    /// Total failure episodes so far, open or recovered.
    pub episodes: usize,
    /// Mean recovery ticks over the most recent recovered episodes (up to
    /// the last 5) — the replica's recent MTTR, `None` until something has
    /// recovered.
    pub recent_mean_recovery: Option<f64>,
    /// Fix attempts the replica's healer has initiated.
    pub fixes_initiated: u64,
    /// Times the replica was restarted (always 0 in batch runs; the
    /// resident daemon's supervisor reports real restart counts).
    pub restarts: u32,
}

impl ReplicaView {
    /// The view of a retired (panicked) replica slot.
    pub fn retired(replica: usize) -> Self {
        ReplicaView {
            replica,
            ticks: 0,
            retired: true,
            open_episodes: 0,
            episodes: 0,
            recent_mean_recovery: None,
            fixes_initiated: 0,
            restarts: 0,
        }
    }
}

/// The whole fleet's state at one epoch barrier: what a [`ReactiveEvent`]
/// gets to observe.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetView {
    /// The barrier tick: every live replica has completed exactly
    /// `tick` ticks, and emitted actions apply from this tick on.
    pub tick: u64,
    /// Per-replica state, ordered by replica index.
    pub replicas: Vec<ReplicaView>,
}

impl FleetView {
    /// The currently-weakest live replica: worst open-episode count, ties
    /// broken toward the lowest replica id — fully deterministic, so
    /// adversarial targeting cannot depend on worker scheduling.  `None`
    /// when every replica is retired.
    pub fn weakest_replica(&self) -> Option<usize> {
        self.replicas
            .iter()
            .filter(|r| !r.retired)
            .max_by(|a, b| {
                (a.open_episodes, std::cmp::Reverse(a.replica))
                    .cmp(&(b.open_episodes, std::cmp::Reverse(b.replica)))
            })
            .map(|r| r.replica)
    }
}

/// A state-observing chaos engine, evaluated at reactive epoch barriers.
///
/// Implementations must be deterministic: the emitted actions may depend
/// only on the event's own state and the sequence of [`FleetView`]s it has
/// observed — never on wall-clock time or thread scheduling.  The engine
/// calls [`on_epoch`](ReactiveEvent::on_epoch) at tick 0 and then at every
/// epoch barrier whose tick is a multiple of [`REACTIVE_PERIOD`]; emitted
/// actions are applied from the view's tick (the first tick of the next
/// window), and injected faults are re-stamped with unique ids in the
/// [`REACTIVE_FAULT_ID_BASE`] namespace.
pub trait ReactiveEvent: Send + std::fmt::Debug {
    /// Short display label for bench output and the reactive log.
    fn label(&self) -> String;

    /// Observes the fleet at a barrier and emits actions for the next
    /// window.  Replica indexes out of range are dropped by the engine.
    fn on_epoch(&mut self, view: &FleetView) -> Vec<(usize, ReplicaAction)>;

    /// The last tick at which this event can still emit work (`u64::MAX`
    /// for unbounded events) —
    /// [`FleetConfig::run_to_quiescence`](crate::FleetConfig::run_to_quiescence)
    /// runs past the horizon plus a healing tail, so keep it tight.
    fn horizon(&self) -> u64;

    /// Clones the event behind a box, preserving its current state.
    fn clone_box(&self) -> Box<dyn ReactiveEvent>;
}

impl Clone for Box<dyn ReactiveEvent> {
    fn clone(&self) -> Self {
        self.as_ref().clone_box()
    }
}

// ---------------------------------------------------------------------------
// AdversarySource
// ---------------------------------------------------------------------------

/// Weakest-replica targeting: at every reactive barrier inside its window,
/// injects one fault into the replica [`FleetView::weakest_replica`] names.
///
/// Against isolated learners this is the worst case the fleet can face —
/// the adversary keeps striking whichever replica is already struggling, so
/// a replica that has not yet learned the fix accumulates damage.  Against
/// a shared synopsis the first victim's fix transfers, and subsequent
/// strikes are healed on the first attempt wherever they land.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarySource {
    kind: FaultKind,
    severity: f64,
    start_tick: u64,
    until_tick: u64,
}

impl AdversarySource {
    /// Creates an adversary striking with `kind` at `severity` at every
    /// reactive barrier in `[start_tick, until_tick)`.
    pub fn new(kind: FaultKind, severity: f64, start_tick: u64, until_tick: u64) -> Self {
        AdversarySource {
            kind,
            severity: severity.clamp(0.0, 1.0),
            start_tick,
            until_tick,
        }
    }
}

impl ReactiveEvent for AdversarySource {
    fn label(&self) -> String {
        format!("adversary_{}", self.kind.label())
    }

    fn on_epoch(&mut self, view: &FleetView) -> Vec<(usize, ReplicaAction)> {
        if view.tick < self.start_tick || view.tick >= self.until_tick {
            return Vec::new();
        }
        let Some(target) = view.weakest_replica() else {
            return Vec::new();
        };
        vec![(
            target,
            ReplicaAction::Inject(FaultSpec::new(
                FaultId(REACTIVE_FAULT_ID_BASE),
                self.kind,
                default_target(self.kind, 0),
                self.severity,
            )),
        )]
    }

    fn horizon(&self) -> u64 {
        self.until_tick.saturating_sub(1)
    }

    fn clone_box(&self) -> Box<dyn ReactiveEvent> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// CascadeEvent
// ---------------------------------------------------------------------------

/// Correlated failure propagation along a service-dependency ring: when
/// replica `r` *enters* a failure episode (open now, closed at the previous
/// barrier), its dependent `(r + 1) % fleet` receives a correlated fault at
/// the next barrier — a downstream service buckling under its upstream's
/// failure.  A total-injection `budget` bounds the chain so a cascade
/// cannot feed itself around the ring forever.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeEvent {
    kind: FaultKind,
    severity: f64,
    budget: usize,
    until_tick: u64,
    injected: usize,
    was_open: Vec<bool>,
}

impl CascadeEvent {
    /// Creates a cascade propagating `kind` at `severity`, injecting at
    /// most `budget` correlated faults before tick `until_tick`.
    pub fn new(kind: FaultKind, severity: f64, budget: usize, until_tick: u64) -> Self {
        CascadeEvent {
            kind,
            severity: severity.clamp(0.0, 1.0),
            budget,
            until_tick,
            injected: 0,
            was_open: Vec::new(),
        }
    }
}

impl ReactiveEvent for CascadeEvent {
    fn label(&self) -> String {
        format!("cascade_{}", self.kind.label())
    }

    fn on_epoch(&mut self, view: &FleetView) -> Vec<(usize, ReplicaAction)> {
        let n = view.replicas.len();
        if self.was_open.len() != n {
            self.was_open = vec![false; n];
        }
        let mut actions = Vec::new();
        for replica in &view.replicas {
            let open = replica.open_episodes > 0;
            let entered = open && !self.was_open[replica.replica];
            self.was_open[replica.replica] = open;
            if !entered
                || view.tick >= self.until_tick
                || self.injected >= self.budget
                || replica.retired
            {
                continue;
            }
            let dependent = (replica.replica + 1) % n;
            if view.replicas[dependent].retired {
                continue;
            }
            self.injected += 1;
            actions.push((
                dependent,
                ReplicaAction::Inject(FaultSpec::new(
                    FaultId(REACTIVE_FAULT_ID_BASE),
                    self.kind,
                    default_target(self.kind, 0),
                    self.severity,
                )),
            ));
        }
        actions
    }

    fn horizon(&self) -> u64 {
        self.until_tick.saturating_sub(1)
    }

    fn clone_box(&self) -> Box<dyn ReactiveEvent> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// ReactivePlan + the engine-facing context
// ---------------------------------------------------------------------------

/// The set of reactive engines wired into one fleet run.
///
/// Build one from declarative [`ReactiveChoice`]s
/// ([`ReactivePlan::from_choices`], what `FleetConfig::reactive` does under
/// the hood) or push any custom [`ReactiveEvent`] implementation with
/// [`ReactivePlan::with`].
#[derive(Debug, Clone, Default)]
pub struct ReactivePlan {
    events: Vec<Box<dyn ReactiveEvent>>,
}

impl ReactivePlan {
    /// An empty plan (no reactive engines).
    pub fn new() -> Self {
        ReactivePlan::default()
    }

    /// Builds a plan from declarative choices.
    pub fn from_choices(choices: impl IntoIterator<Item = ReactiveChoice>) -> Self {
        let mut plan = ReactivePlan::new();
        for choice in choices {
            plan.push_choice(choice);
        }
        plan
    }

    /// Adds one engine (builder style).
    pub fn with(mut self, event: impl ReactiveEvent + 'static) -> Self {
        self.events.push(Box::new(event));
        self
    }

    /// Adds one declarative choice.
    pub fn push_choice(&mut self, choice: ReactiveChoice) {
        match choice {
            ReactiveChoice::Adversary {
                kind,
                severity,
                start_tick,
                until_tick,
            } => self.events.push(Box::new(AdversarySource::new(
                kind, severity, start_tick, until_tick,
            ))),
            ReactiveChoice::Cascade {
                kind,
                severity,
                budget,
                until_tick,
            } => self.events.push(Box::new(CascadeEvent::new(
                kind, severity, budget, until_tick,
            ))),
        }
    }

    /// Number of configured engines.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no engines are configured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Engine labels, in configuration order.
    pub fn labels(&self) -> Vec<String> {
        self.events.iter().map(|e| e.label()).collect()
    }

    /// The latest finite engine horizon, `None` when every engine is
    /// unbounded (or the plan is empty).
    pub fn horizon(&self) -> Option<u64> {
        self.events
            .iter()
            .map(|e| e.horizon())
            .filter(|h| *h != u64::MAX)
            .max()
    }
}

/// One action emitted by a reactive engine during a run — the audit trail
/// [`FleetOutcome::reactive_log`](crate::FleetOutcome::reactive_log)
/// exposes, which benches use to attribute episodes to reactive stimuli.
#[derive(Debug, Clone, PartialEq)]
pub struct ReactiveRecord {
    /// The barrier tick the action was emitted (and applies) at.
    pub tick: u64,
    /// The replica the action targets.
    pub replica: usize,
    /// Label of the emitting engine.
    pub event: String,
    /// The action as applied (injected faults carry their re-stamped id).
    pub action: ReplicaAction,
}

/// The live reactive state one fleet run carries: the engines, the id
/// counter re-stamping their injections, and the emitted-action log.
#[derive(Debug)]
pub(crate) struct ReactiveContext {
    events: Vec<Box<dyn ReactiveEvent>>,
    next_fault_id: u64,
    log: Vec<ReactiveRecord>,
}

impl ReactiveContext {
    pub(crate) fn new(plan: ReactivePlan) -> Self {
        ReactiveContext {
            events: plan.events,
            next_fault_id: REACTIVE_FAULT_ID_BASE,
            log: Vec::new(),
        }
    }

    /// Runs every engine against `view`, re-stamps injected fault ids, logs
    /// the actions, and returns them for scheduling.  Engines run in
    /// configuration order and ids are assigned in emission order, so the
    /// result is a pure function of the view sequence.
    pub(crate) fn evaluate(&mut self, view: &FleetView) -> Vec<(usize, ReplicaAction)> {
        let mut resolved = Vec::new();
        for event in &mut self.events {
            let label = event.label();
            for (replica, mut action) in event.on_epoch(view) {
                if replica >= view.replicas.len() {
                    continue;
                }
                if let ReplicaAction::Inject(fault) = &mut action {
                    fault.id = FaultId(self.next_fault_id);
                    self.next_fault_id += 1;
                }
                self.log.push(ReactiveRecord {
                    tick: view.tick,
                    replica,
                    event: label.clone(),
                    action: action.clone(),
                });
                resolved.push((replica, action));
            }
        }
        resolved
    }

    pub(crate) fn into_log(self) -> Vec<ReactiveRecord> {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(tick: u64, open: &[usize]) -> FleetView {
        FleetView {
            tick,
            replicas: open
                .iter()
                .enumerate()
                .map(|(replica, open_episodes)| ReplicaView {
                    replica,
                    ticks: tick,
                    retired: false,
                    open_episodes: *open_episodes,
                    episodes: *open_episodes,
                    recent_mean_recovery: None,
                    fixes_initiated: 0,
                    restarts: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn weakest_replica_prefers_open_episodes_then_low_id() {
        assert_eq!(view(0, &[0, 1, 0]).weakest_replica(), Some(1));
        assert_eq!(
            view(0, &[0, 1, 1]).weakest_replica(),
            Some(1),
            "tie → low id"
        );
        assert_eq!(view(0, &[0, 0, 0]).weakest_replica(), Some(0));
        let mut retired = view(0, &[0, 0]);
        retired.replicas[0] = ReplicaView::retired(0);
        assert_eq!(retired.weakest_replica(), Some(1), "retired skipped");
        retired.replicas[1] = ReplicaView::retired(1);
        assert_eq!(retired.weakest_replica(), None);
    }

    #[test]
    fn adversary_strikes_the_weakest_inside_its_window() {
        let mut adversary = AdversarySource::new(FaultKind::BufferContention, 0.9, 64, 256);
        assert!(
            adversary.on_epoch(&view(0, &[0, 1])).is_empty(),
            "pre-start"
        );
        let actions = adversary.on_epoch(&view(64, &[0, 1]));
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].0, 1);
        let ReplicaAction::Inject(fault) = &actions[0].1 else {
            panic!("adversaries inject");
        };
        assert_eq!(fault.kind, FaultKind::BufferContention);
        assert!(
            adversary.on_epoch(&view(256, &[0, 1])).is_empty(),
            "post-end"
        );
        assert_eq!(adversary.horizon(), 255);
    }

    #[test]
    fn cascade_propagates_to_the_ring_dependent_within_budget() {
        let mut cascade = CascadeEvent::new(FaultKind::DeadlockedThreads, 0.8, 2, 1000);
        assert!(
            cascade.on_epoch(&view(0, &[0, 0, 0])).is_empty(),
            "calm fleet"
        );
        // Replica 1 enters an episode → dependent 2 is seeded.
        let actions = cascade.on_epoch(&view(64, &[0, 1, 0]));
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].0, 2);
        // Still open at the next barrier: no re-trigger (edge, not level).
        assert!(cascade.on_epoch(&view(128, &[0, 1, 0])).is_empty());
        // Wraps around the ring, and the budget caps the chain.
        let actions = cascade.on_epoch(&view(192, &[0, 1, 1]));
        assert_eq!(actions, vec![(0, actions[0].1.clone())], "2 → dependent 0");
        assert!(
            cascade.on_epoch(&view(256, &[1, 0, 0])).is_empty(),
            "budget of 2 exhausted"
        );
    }

    #[test]
    fn context_restamps_ids_and_logs_every_action() {
        let plan = ReactivePlan::from_choices([
            ReactiveChoice::adversary(FaultKind::BufferContention, 0.9, 0, 1000),
            ReactiveChoice::cascade(FaultKind::DeadlockedThreads, 0.8, 4, 1000),
        ]);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.horizon(), Some(999));
        assert_eq!(
            plan.labels(),
            vec!["adversary_buffer_contention", "cascade_deadlocked_threads"]
        );
        let mut context = ReactiveContext::new(plan);
        let actions = context.evaluate(&view(0, &[1, 1]));
        // Adversary hits the tied weakest (replica 0); both replicas enter
        // episodes, so the cascade seeds both dependents.
        assert_eq!(actions.len(), 3);
        let ids: Vec<u64> = actions
            .iter()
            .map(|(_, action)| {
                let ReplicaAction::Inject(fault) = action else {
                    panic!("all reactive actions here inject");
                };
                fault.id.0
            })
            .collect();
        assert_eq!(
            ids,
            vec![
                REACTIVE_FAULT_ID_BASE,
                REACTIVE_FAULT_ID_BASE + 1,
                REACTIVE_FAULT_ID_BASE + 2
            ]
        );
        let log = context.into_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].event, "adversary_buffer_contention");
        assert_eq!(log[0].tick, 0);
    }
}
