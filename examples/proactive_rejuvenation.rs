//! Proactive healing (Section 5.3 of the paper): software aging slowly leaks
//! resources in the application tier; the proactive healer forecasts the
//! response-time trajectory and rejuvenates the tier *before* the SLO is
//! violated, compared against reacting only after the violation.
//!
//! ```bash
//! cargo run --release --example proactive_rejuvenation
//! ```

use selfheal::faults::{FaultKind, FaultTarget, InjectionPlanBuilder};
use selfheal::healing::control;
use selfheal::healing::harness::{PolicyChoice, SelfHealingService};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::ServiceConfig;
use selfheal::telemetry::Value;

fn main() {
    let config = ServiceConfig::tiny();
    let injections = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
        .inject(80, FaultKind::SoftwareAging, FaultTarget::AppTier, 0.9)
        .build();

    let policies = [
        ("no healing", PolicyChoice::None),
        (
            "reactive hybrid",
            PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor),
        ),
        ("proactive", PolicyChoice::Proactive),
    ];

    println!("software aging injected at tick 80 (slow leak in the application tier)\n");
    for (name, policy) in policies {
        let outcome = SelfHealingService::builder()
            .config(config.clone())
            .injections(injections.clone())
            .policy(policy)
            .run(900);

        // Control-theoretic view of the response-time trajectory after the
        // disturbance (Section 5.4): settling time, overshoot, oscillation.
        let response_id = outcome.series.schema().expect_id("svc.response_ms");
        let trajectory: Vec<Value> = outcome
            .series
            .iter()
            .filter(|s| s.tick() >= 80)
            .map(|s| s.get(response_id))
            .collect();
        let analysis = control::analyze(&trajectory, 40.0, 0.9);

        println!("policy = {name}");
        println!(
            "  SLO violation fraction = {:.3}, fixes initiated = {}, goodput = {:.1}%",
            outcome.violation_fraction,
            outcome.fixes_initiated,
            100.0 * outcome.goodput_fraction()
        );
        println!(
            "  response-time control analysis: settling = {:?} ticks, overshoot = {:.1}x, oscillations = {}, stable = {}\n",
            analysis.settling_ticks,
            analysis.overshoot_ratio,
            analysis.oscillations,
            analysis.is_stable()
        );
    }
}
