//! Pluggable workload sources: record/replay a synthetic trace, then stress
//! the healer with recurring flash-crowd storms.
//!
//! ```bash
//! cargo run --release --example workload_sources
//! ```
//!
//! Demonstrates the `TraceSource` API end to end:
//!
//! 1. **Record** a synthetic `TraceGenerator` run into a `RecordedTrace`,
//!    round-trip it through the JSON-lines codec, and **replay** it —
//!    asserting the replayed scenario is byte-identical (same
//!    `ScenarioOutcome::fingerprint()`) to the synthetic original.
//! 2. Replay the same trace **phase-shifted** (starting mid-trace, looping),
//!    the per-replica stagger a fleet applies.
//! 3. Drive the service with a **`BurstSource`** — 5× flash crowds every 200
//!    ticks — and show the hybrid healer coping with the storms.

use selfheal::faults::{FaultKind, FaultTarget, InjectionPlanBuilder};
use selfheal::healing::harness::{PolicyChoice, SelfHealingService, WorkloadChoice};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::ServiceConfig;
use selfheal::workload::{
    ArrivalProcess, BurstSource, RecordedTrace, ReplayMode, ReplaySource, TraceGenerator,
    WorkloadMix,
};

fn main() {
    let config = ServiceConfig::tiny();
    let ticks = 600u64;
    let plan = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
        .inject(
            150,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .build();

    // 1. Record a synthetic run and replay it byte-identically.
    let mix = WorkloadMix::bidding();
    let arrivals = ArrivalProcess::Poisson { rate: 40.0 };
    let seed = 7u64;

    let synthetic = SelfHealingService::builder()
        .config(config.clone())
        .workload_choice(WorkloadChoice::synthetic(mix.clone(), arrivals.clone()))
        .injections(plan.clone())
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .seed(seed)
        .run(ticks);

    let mut generator = TraceGenerator::new(mix, arrivals, seed);
    let trace = RecordedTrace::capture(&mut generator, ticks);
    let jsonl = trace.to_jsonl();
    let parsed = RecordedTrace::from_jsonl(&jsonl).expect("codec round trip");
    assert_eq!(parsed, trace, "parse ∘ serialize = id");
    println!(
        "recorded {} ticks / {} requests ({} KiB of JSON lines)",
        trace.len(),
        trace.total_requests(),
        jsonl.len() / 1024
    );

    let replayed = SelfHealingService::builder()
        .config(config.clone())
        .workload(ReplaySource::new(parsed, ReplayMode::Truncate))
        .injections(plan.clone())
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .run(ticks);
    assert_eq!(
        synthetic.fingerprint(),
        replayed.fingerprint(),
        "replay must be byte-identical to the synthetic run"
    );
    println!(
        "replay is byte-identical to the synthetic run (fingerprint {:#018x})",
        replayed.fingerprint()
    );

    // 2. Phase-shifted loop replay: the same trace entered 150 ticks in —
    // what replica 1 of a fleet with `phase_step = 150` would see.
    let shifted = SelfHealingService::builder()
        .config(config.clone())
        .workload(ReplaySource::new(trace, ReplayMode::Loop).with_phase(150))
        .injections(plan)
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .run(ticks);
    println!(
        "phase-shifted replay: fingerprint {:#018x} (differs from {:#018x})",
        shifted.fingerprint(),
        replayed.fingerprint()
    );
    assert_ne!(shifted.fingerprint(), replayed.fingerprint());

    // 3. Flash-crowd storms: 5x the baseline for 30 of every 200 ticks.
    // The same service that is comfortably SLO-compliant under the steady
    // baseline is pushed into repeated violation episodes by the storms —
    // the scenario shape the paper's Walmart.com Thanksgiving example
    // describes.
    let burst = BurstSource::new(WorkloadMix::bidding(), 25.0, 5.0, 200, 30, 11);
    println!(
        "\n== flash crowds (base 25 req/tick, 5x for 30/200 ticks) ==\n\
         storm windows carry {:.0} req/tick",
        burst.rate_at(0)
    );
    let steady = SelfHealingService::builder()
        .config(config.clone())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Poisson { rate: 25.0 },
        )
        .run(1000);
    let stormy = SelfHealingService::builder()
        .config(config.clone())
        .workload(burst)
        .run(1000);
    println!(
        "  steady baseline: violation fraction {:.3}  goodput {:.1}%",
        steady.violation_fraction,
        100.0 * steady.goodput_fraction()
    );
    println!(
        "  under storms:    violation fraction {:.3}  goodput {:.1}%",
        stormy.violation_fraction,
        100.0 * stormy.goodput_fraction()
    );
    assert!(stormy.violation_fraction > steady.violation_fraction);

    // The same storms as a declarative fleet workload: every replica rides
    // out its own independently-seeded copy of the flash crowds.
    let fleet = selfheal::fleet::FleetConfig::builder()
        .service(config)
        .workload(WorkloadChoice::burst(
            WorkloadMix::bidding(),
            25.0,
            5.0,
            200,
            30,
        ))
        .replicas(4)
        .ticks(600)
        .run();
    println!(
        "  4-replica burst fleet: mean violation fraction {:.3}, goodput {:.1}%",
        fleet.mean_violation_fraction(),
        100.0 * fleet.goodput_fraction()
    );
}
