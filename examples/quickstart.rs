//! Quickstart: run the RUBiS-like service, break it, and let the hybrid
//! (FixSym + diagnosis) policy heal it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use selfheal::faults::{FaultKind, FaultTarget, InjectionPlanBuilder};
use selfheal::healing::harness::{PolicyChoice, SelfHealingService};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::ServiceConfig;

fn main() {
    let config = ServiceConfig::rubis_default();

    // Schedule two failures from Table 1 of the paper: a starved database
    // buffer pool and an EJB that starts throwing unhandled exceptions.
    let injections = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
        .inject(
            120,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .inject(
            700,
            FaultKind::UnhandledException,
            FaultTarget::Ejb { index: 1 },
            0.9,
        )
        .build();

    println!("== no self-healing ==");
    let baseline = SelfHealingService::builder()
        .config(config.clone())
        .injections(injections.clone())
        .policy(PolicyChoice::None)
        .run(1200);
    report(&baseline);

    println!("\n== hybrid FixSym + diagnosis self-healing ==");
    let healed = SelfHealingService::builder()
        .config(config)
        .injections(injections)
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .run(1200);
    report(&healed);

    println!(
        "\nSLO violation time reduced from {:.1}% to {:.1}% of the run.",
        100.0 * baseline.violation_fraction,
        100.0 * healed.violation_fraction
    );
}

fn report(outcome: &selfheal::sim::ScenarioOutcome) {
    println!(
        "ticks={}  arrived={}  completed={}  errors={}  goodput={:.1}%",
        outcome.ticks,
        outcome.arrived,
        outcome.completed,
        outcome.errors,
        100.0 * outcome.goodput_fraction()
    );
    println!(
        "slo violation fraction={:.3}  fixes initiated={}  failure episodes={}",
        outcome.violation_fraction,
        outcome.fixes_initiated,
        outcome.recovery.len()
    );
    for (i, episode) in outcome.recovery.episodes().iter().enumerate() {
        match episode.recovery_ticks() {
            Some(t) => println!(
                "  episode {i}: detected at tick {}, recovered after {t} ticks ({} fix attempts)",
                episode.detected_at,
                episode.fixes_attempted.len()
            ),
            None => println!(
                "  episode {i}: detected at tick {}, never recovered",
                episode.detected_at
            ),
        }
    }
}
