//! Head-to-head comparison of all fix-identification approaches (the
//! empirical counterpart of Table 2 in the paper) on a recurring-failure
//! scenario, at a reduced scale suitable for a quick demo.
//!
//! ```bash
//! cargo run --release --example approach_comparison
//! ```

use selfheal_bench as bench;

fn main() {
    let table = bench::table2_approach_comparison(
        bench::ExperimentScale {
            comparison_ticks: 1200,
            ..bench::ExperimentScale::quick()
        },
        11,
    );
    println!("{}", table.to_text());
    println!(
        "Lower SLO-violation fraction and fewer escalations are better; the hybrid\n\
         (signature + diagnosis) policy should dominate the single approaches, matching\n\
         the qualitative conclusions of Table 2 / Section 5.1 of the paper."
    );
}
