//! FixSym learning in action: the signature-based engine heals a stream of
//! recurring failures, getting faster with experience (the behaviour behind
//! Figure 4 of the paper).
//!
//! ```bash
//! cargo run --release --example fixsym_learning
//! ```

use selfheal::faults::{FaultKind, FixCatalog};
use selfheal::healing::fixsym::FixSymEngine;
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::{FailureStateGenerator, ServiceConfig};

fn main() {
    // The simulator generates labelled failure states: symptom vectors plus
    // the fix that actually repairs each failure (used only to *check* an
    // attempted fix, exactly like the check_fix step of Figure 3).
    let mut generator = FailureStateGenerator::standard(ServiceConfig::tiny(), 7);
    let kinds = FaultKind::TABLE1.to_vec();
    let catalog = FixCatalog::standard();

    println!("training FixSym with three different synopses on recurring Table 1 failures\n");
    for kind in [
        SynopsisKind::AdaBoost(60),
        SynopsisKind::NearestNeighbor,
        SynopsisKind::KMeans,
    ] {
        let mut engine = FixSymEngine::new(kind);
        let mut attempts_per_block = Vec::new();
        let mut block_attempts = 0usize;
        let mut block_count = 0usize;

        for i in 0..60 {
            let state = generator.generate_one(&kinds);
            let correct = state.correct_fix;
            let result = engine.run_episode(&state.symptoms, |fix| fix == correct);
            block_attempts += result.attempt_count();
            block_count += 1;
            if (i + 1) % 15 == 0 {
                attempts_per_block.push(block_attempts as f64 / block_count as f64);
                block_attempts = 0;
                block_count = 0;
            }
        }

        println!("synopsis = {}", kind.label());
        println!(
            "  mean fix attempts per failure, in blocks of 15 failures: {:?}",
            attempts_per_block
        );
        println!(
            "  correct fixes learned = {}, escalations = {}, training ops = {}",
            engine.synopsis().correct_fixes_learned(),
            engine.escalations(),
            engine.synopsis().training_ops()
        );
        // Sanity: the learned mapping matches the catalog for a fresh failure.
        let probe = generator.generate_one(&kinds);
        if let Some((fix, confidence)) = engine.synopsis().suggest(&probe.symptoms) {
            println!(
                "  fresh {} failure -> suggested fix {} (confidence {:.2}, catalog says {})\n",
                probe.fault_kind,
                fix,
                confidence,
                catalog.preferred_fix(probe.fault_kind)
            );
        }
    }
}
