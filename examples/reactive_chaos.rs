//! Reactive chaos: state-observing engines that watch the fleet at epoch
//! barriers and strike back — plus horizon-aware auto-quiesce.
//!
//! ```bash
//! cargo run --release --example reactive_chaos
//! ```
//!
//! Demonstrates the reactive subsystem end to end:
//!
//! 1. **Adversary** — a weakest-replica targeter strikes whichever replica
//!    has the most open episodes at every reactive barrier.  A scout
//!    injection teaches the shared synopsis the fix first, so every strike
//!    is healed on the first attempt.
//! 2. **Auto-quiesce** — `run_to_quiescence()` reads the configuration's
//!    stimulus horizon (scripted plans, fault sources, reactive engines)
//!    and runs exactly one healing tail past it: no hand-tuned tick counts.
//! 3. **Shared vs isolated under attack** — the paper's claim, forced: an
//!    adversary that piles onto the weak makes shared fix synopses
//!    out-heal isolated learners.
//! 4. **Cascade** — a correlated-failure ring: each replica that *enters*
//!    an episode seeds a fault in its dependent, bounded by a budget.
//!
//! All reactive runs are fingerprint-deterministic at any worker count
//! because engines observe the fleet only at barriers, where every replica
//! has completed exactly the same tick.

use selfheal::fleet::{ExecutionMode, HEALING_TAIL};
use selfheal::healing::harness::LearnerChoice;
use selfheal_bench::fleet::{
    adversarial_fleet, adversarial_recovery_comparison, cascade_fleet, cascade_injections,
    reactive_strike_stats, ADVERSARY_UNTIL,
};

fn main() {
    // 1 + 2. An adversarial fleet, auto-quiesced: the horizon is the last
    // tick the adversary may still strike, and the run extends one healing
    // tail past it.
    let config = adversarial_fleet(6, 42, LearnerChoice::Locked { batch: 1 }, 64);
    let horizon = config.stimulus_horizon().expect("adversary is bounded");
    assert_eq!(horizon, ADVERSARY_UNTIL - 1, "the last strikeable tick");
    let outcome = config.run_to_quiescence();
    let ticks_per_replica = outcome.total_ticks() / outcome.replicas().len() as u64;
    println!(
        "auto-quiesce: stimulus horizon {horizon}, healing tail {HEALING_TAIL} \
         -> {ticks_per_replica} ticks per replica"
    );
    assert_eq!(ticks_per_replica, horizon + 1 + HEALING_TAIL);

    println!("\nadversary strike log (each strike targets the weakest replica):");
    for record in outcome.reactive_log() {
        println!(
            "  tick {:>4}  {} -> replica {}",
            record.tick, record.event, record.replica
        );
    }
    let (strikes, matched, open, attempts, recovery) = reactive_strike_stats(&outcome);
    println!(
        "shared synopsis: {strikes} strikes, {matched} matched episodes, {open} open, \
         {attempts:.2} mean attempts, {recovery:.1} mean recovery ticks"
    );

    // 3. The head-to-head: one fleet pools its fixes, the other learns in
    // isolation; the adversary reacts to each fleet's own health.
    let report = adversarial_recovery_comparison(6, 42);
    println!("\nshared vs isolated under adversarial targeting:");
    println!(
        "  shared   {} strikes, {} matched, {:.2} attempts, {:>5.1} recovery ticks",
        report.shared_strikes,
        report.shared_matched,
        report.shared_mean_attempts,
        report.shared_mean_recovery
    );
    println!(
        "  isolated {} strikes, {} matched, {:.2} attempts, {:>5.1} recovery ticks",
        report.isolated_strikes,
        report.isolated_matched,
        report.isolated_mean_attempts,
        report.isolated_mean_recovery
    );
    assert!(report.shared_recovers_faster());

    // 4. The cascade ring, and worker-count determinism: the same reactive
    // run, sequential and parallel, is fingerprint-identical.
    let sequential = cascade_fleet(4, 7, LearnerChoice::locked(), 3, 64).run_to_quiescence();
    let parallel = cascade_fleet(4, 7, LearnerChoice::locked(), 3, 64)
        .mode(ExecutionMode::Parallel { threads: Some(3) })
        .run_to_quiescence();
    println!("\ncascade propagation chain:");
    for record in sequential.reactive_log() {
        println!(
            "  tick {:>4}  {} seeds replica {}",
            record.tick, record.event, record.replica
        );
    }
    println!(
        "cascade: {} propagations within budget 3, fingerprints parallel == sequential: {}",
        cascade_injections(&sequential),
        parallel.fingerprints() == sequential.fingerprints()
    );
    assert_eq!(parallel.fingerprints(), sequential.fingerprints());
}
