//! Pluggable fault sources: scripted plans, demographic generation from the
//! paper's failure-cause mixes, catalog coverage sweeps, and CauseMix-driven
//! fault storms.
//!
//! ```bash
//! cargo run --release --example fault_sources
//! ```
//!
//! Demonstrates the `FaultSource` API end to end:
//!
//! 1. **Scripted** — wrap an `InjectionPlan` in a `ScriptedSource` and show
//!    the run is byte-identical (same `ScenarioOutcome::fingerprint()`) to
//!    the plan-accepting constructor path.
//! 2. **Demographic mix** — generate faults stochastically from the
//!    `Online` service profile's Figure 1 cause mix (Section 4.2's active
//!    preproduction stimulation) and compare the realized cause demographics
//!    with the configured weights.
//! 3. **Catalog sweep** — one fault of every Table 1 / catalog class at a
//!    fixed cadence: the FixSym training-coverage run, after which the
//!    synopsis knows a fix for every signature it met.
//! 4. **Catalog storm** — a fleet-wide correlated outage whose victims each
//!    manifest a *different* class drawn from the cause mix.

use selfheal::faults::{FailureCause, FaultSource, MixSource, ServiceProfile};
use selfheal::fleet::{ExecutionMode, FleetConfig};
use selfheal::healing::harness::{
    EventChoice, FaultChoice, LearnerChoice, PolicyChoice, SelfHealingService,
};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::ServiceConfig;
use selfheal::workload::{ArrivalProcess, WorkloadMix};
use std::collections::HashMap;

fn main() {
    let config = ServiceConfig::tiny();

    // 1. Scripted sources are the old injection plans, verbatim.
    let plan = selfheal::faults::InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
        .inject(
            100,
            selfheal::faults::FaultKind::BufferContention,
            selfheal::faults::FaultTarget::DatabaseTier,
            0.9,
        )
        .build();
    let via_plan = SelfHealingService::builder()
        .config(config.clone())
        .injections(plan.clone())
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .seed(7)
        .run(400);
    let via_source = SelfHealingService::builder()
        .config(config.clone())
        .faults(FaultChoice::Scripted(plan))
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .seed(7)
        .run(400);
    assert_eq!(via_plan.fingerprint(), via_source.fingerprint());
    println!(
        "scripted: plan path == ScriptedSource path (fingerprint {:#018x})",
        via_plan.fingerprint()
    );

    // 2. Demographic generation: the Figure 1 cause mix as a generator.
    let profile = ServiceProfile::Online;
    let mut source = MixSource::new(profile, 1.0, 42);
    let mut counts: HashMap<FailureCause, usize> = HashMap::new();
    let n = 5_000u64;
    for tick in 0..n {
        for fault in source.due_at(tick) {
            *counts.entry(fault.cause).or_insert(0) += 1;
        }
    }
    println!(
        "\n{} demographics over {n} generated faults:",
        profile.name()
    );
    for &(cause, weight) in profile.cause_mix().probabilities() {
        let freq = counts.get(&cause).copied().unwrap_or(0) as f64 / n as f64;
        println!("  {cause:<10} configured {weight:.2}  realized {freq:.3}");
    }

    // ...and as a live run: faults at 2% per tick for 400 ticks, then a
    // quiet tail in which the hybrid healer drains every episode.
    let mix_run = SelfHealingService::builder()
        .config(config.clone())
        .faults(FaultChoice::mix_for(profile, 0.02, &config).active_for(400))
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .seed(42)
        .run(800);
    let healed = mix_run
        .recovery
        .episodes()
        .iter()
        .filter(|e| e.recovery_ticks().is_some())
        .count();
    println!(
        "mix run: {} episodes, {healed} healed, {} fixes, goodput {:.3}",
        mix_run.recovery.len(),
        mix_run.fixes_initiated,
        mix_run.goodput_fraction()
    );

    // 3. Catalog sweep: FixSym training coverage.
    let sweep_run = SelfHealingService::builder()
        .config(config.clone())
        .faults(FaultChoice::sweep(50, 400))
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .seed(3)
        .run(50 + 400 * 12 + 600);
    println!(
        "\ncatalog sweep: {} classes injected -> {} episodes, {} fixes initiated",
        selfheal::faults::CatalogSweep::kinds().len(),
        sweep_run.recovery.len(),
        sweep_run.fixes_initiated
    );

    // 4. A CauseMix-driven storm: at tick 100, every replica is hit, each
    // with its own class drawn from the Online mix.
    let storm = FleetConfig::builder()
        .service(config)
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(6)
        .ticks(500)
        .base_seed(9)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .learner(LearnerChoice::locked())
        .event(EventChoice::catalog_storm(100, ServiceProfile::Online, 1.0))
        .mode(ExecutionMode::Sequential)
        .run();
    println!("\ncatalog storm victims:");
    for replica in storm.replicas() {
        let mut kinds: Vec<String> = replica
            .outcome
            .recovery
            .episodes()
            .iter()
            .filter_map(|e| e.primary_fault())
            .map(|k| k.to_string())
            .collect();
        kinds.dedup();
        println!("  replica {}: {}", replica.replica, kinds.join(", "));
    }
    println!(
        "storm fleet: {} episodes across {} replicas, all deterministic at any worker count",
        storm.total_episodes(),
        storm.replicas().len()
    );
}
