#!/usr/bin/env bash
# End-to-end smoke for the HTTP gateway (the CI gateway job):
#
#   launch the daemon (1 replica, online fault mix, snapshot log)
#     -> launch selfheal-gateway on an ephemeral port with three tokens
#        (wildcard admin, scout operator, victim reader)
#     -> missing/unknown token must be 401, wrong tenant/scope must be 403
#        (and the denial must land in the audit log)
#     -> create tenants scout+victim (pooled) and loner (unpooled) over HTTP
#     -> grow the scout's fleet, wait for it to learn a fix
#     -> the victim's fix query must see the pool, the loner's must not
#     -> stream two tenant-tagged metrics lines from the chunked feed
#     -> kill -9 the daemon: the gateway must answer 502, not die
#     -> relaunch: both learning tenants' synopses restore from their own
#        logs, visible over HTTP
#     -> POST /v1/shutdown stops the daemon within a bounded wait
#
# Exits 1 on any failed step.  Binaries default to target/release; override
# with DAEMON= / GATEWAY= / HTTP=.
set -u

DAEMON="${DAEMON:-target/release/selfheal-daemon}"
GATEWAY="${GATEWAY:-target/release/selfheal-gateway}"
HTTP="${HTTP:-target/release/selfheal-http}"
DIR="$(mktemp -d)"
SOCKET="$DIR/control.sock"
STORE="$DIR/synopsis.jsonl"
AUDIT="$DIR/audit.log"
DAEMON_PID=""
GATEWAY_PID=""

fail() {
    echo "gateway_smoke: FAIL: $*" >&2
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
    [ -n "$GATEWAY_PID" ] && kill -9 "$GATEWAY_PID" 2>/dev/null
    rm -rf "$DIR"
    exit 1
}

http() { "$HTTP" --timeout-secs 20 "$@"; }

# Asserts that a request is denied with the given status (the client exits
# nonzero and names the status on stderr).
denied() {
    local status="$1"
    shift
    local err
    if err=$(http "$@" 2>&1 >/dev/null); then
        fail "expected status $status, got success: $*"
    fi
    printf '%s\n' "$err" | grep -q "status $status" \
        || fail "expected status $status for: $* (got: $err)"
}

launch_daemon() {
    "$DAEMON" --socket "$SOCKET" --store "$STORE" --replicas 1 \
        --fault-mix online:0.02 &
    DAEMON_PID=$!
}

[ -x "$DAEMON" ] || fail "$DAEMON is not built (cargo build --release)"
[ -x "$GATEWAY" ] || fail "$GATEWAY is not built (cargo build --release)"
[ -x "$HTTP" ] || fail "$HTTP is not built (cargo build --release)"

cat > "$DIR/tokens.toml" <<'EOF'
# The three personas the gateway tests use everywhere: a wildcard admin,
# an operator bound to one tenant, a reader bound to another.
[[token]]
name = "ops"
secret = "swordfish"
tenant = "*"
scope = "admin"

[[token]]
name = "scout-op"
secret = "hunter2"
tenant = "scout"
scope = "operate"

[[token]]
name = "victim-ro"
secret = "letmein"
tenant = "victim"
scope = "read"
EOF

launch_daemon
"$GATEWAY" --listen 127.0.0.1:0 --socket "$SOCKET" --tokens "$DIR/tokens.toml" \
    --audit "$AUDIT" --stream-millis 50 > "$DIR/gateway.out" 2>&1 &
GATEWAY_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^listening on http://##p' "$DIR/gateway.out")"
    [ -n "$ADDR" ] && break
    kill -0 "$GATEWAY_PID" 2>/dev/null || fail "gateway exited at launch: $(cat "$DIR/gateway.out")"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "gateway never printed its address"
BASE="http://$ADDR"

# Wait for the daemon behind the gateway, through the gateway.
UP=""
for _ in $(seq 1 100); do
    if http --token swordfish GET "$BASE/v1/tenants" >/dev/null 2>&1; then
        UP=1
        break
    fi
    sleep 0.1
done
[ -n "$UP" ] || fail "daemon never answered through the gateway"

# Auth: routing leaks nothing (404), then 401 before 403.
denied 404 --token swordfish GET "$BASE/nope"
denied 401 GET "$BASE/v1/tenants"
denied 401 --token wrong GET "$BASE/v1/tenants"
denied 403 --token hunter2 GET "$BASE/v1/tenants"          # tenant-bound on a daemon-wide route
denied 403 --token letmein --body '{"name":"x"}' POST "$BASE/v1/tenants"  # read scope cannot mutate

# Tenant lifecycle over HTTP: two pooled tenants and one loner.
http --token swordfish --body '{"name":"scout","shared_pool":true}' \
    POST "$BASE/v1/tenants" >/dev/null || fail "create scout rejected"
http --token swordfish --body '{"name":"victim","shared_pool":true}' \
    POST "$BASE/v1/tenants" >/dev/null || fail "create victim rejected"
http --token swordfish --body '{"name":"loner"}' \
    POST "$BASE/v1/tenants" >/dev/null || fail "create loner rejected"
http --token swordfish GET "$BASE/v1/tenants" | grep -q 'tenant=scout shared_pool=on' \
    || fail "tenant list does not show the pooled scout"

# The scout operator grows its own fleet — and only its own.  The replicas
# run the launch mix (online:0.02): a cold store cannot out-heal a much
# hotter fault rate, it would thrash mid-trial forever.
http --token hunter2 --body '{"profile":"default"}' \
    POST "$BASE/v1/tenants/scout/replicas" >/dev/null || fail "scout ADD rejected"
http --token hunter2 --body '{"profile":"default"}' \
    POST "$BASE/v1/tenants/scout/replicas" >/dev/null || fail "second scout ADD rejected"
denied 403 --token hunter2 GET "$BASE/v1/tenants/victim/status"

# Learn in the scout.
LEARNED=""
for _ in $(seq 1 600); do
    STATUS="$(http --token hunter2 GET "$BASE/v1/tenants/scout/status" 2>/dev/null)" || STATUS=""
    if printf '%s\n' "$STATUS" | grep -q 'fixes_known=[1-9]'; then
        LEARNED=1
        break
    fi
    sleep 0.1
done
[ -n "$LEARNED" ] || fail "the scout never learned a fix; last status: $STATUS"

# Cross-tenant transfer: the pooled victim sees the scout's experience,
# the unpooled loner does not.
http --token letmein GET "$BASE/v1/tenants/victim/fixes" | grep -q 'pool fix=' \
    || fail "the pooled victim sees no pool experience"
http --token swordfish GET "$BASE/v1/tenants/loner/fixes" | grep -q 'pool fix=' \
    && fail "the unpooled loner saw pool experience"

# The chunked metrics stream emits tenant-tagged JSON lines.
STREAM="$(http --token hunter2 --stream 2 GET "$BASE/v1/tenants/scout/metrics/stream")" \
    || fail "metrics stream failed"
COUNT="$(printf '%s\n' "$STREAM" | grep -c '"tenant":"scout"')"
[ "$COUNT" -eq 2 ] || fail "expected 2 tenant-tagged stream lines, got $COUNT: $STREAM"

# The audit log names the granted and denied mutations, never a secret.
grep -q 'token=ops .*path=/v1/tenants status=200' "$AUDIT" || fail "audit log misses the grants"
grep -q 'token=victim-ro .*status=403' "$AUDIT" || fail "audit log misses the denial"
grep -q 'swordfish\|hunter2\|letmein' "$AUDIT" && fail "audit log leaked a secret"

# kill -9 the daemon: the gateway survives and reports 502.
kill -9 "$DAEMON_PID" || fail "kill -9 failed"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""
GONE=""
for _ in $(seq 1 100); do
    ERR=$(http --token swordfish GET "$BASE/v1/tenants" 2>&1 >/dev/null) || true
    if printf '%s\n' "$ERR" | grep -q 'status 502'; then
        GONE=1
        break
    fi
    sleep 0.1
done
[ -n "$GONE" ] || fail "gateway never reported 502 after the daemon died"

# Relaunch: the manifest recreates the tenants and each learning tenant's
# own snapshot log restores its synopsis — all visible over HTTP.
launch_daemon
RESTORED=""
for _ in $(seq 1 100); do
    LIST="$(http --token swordfish GET "$BASE/v1/tenants" 2>/dev/null)" || LIST=""
    if printf '%s\n' "$LIST" | grep -q 'tenant=scout' ; then
        RESTORED=1
        break
    fi
    sleep 0.1
done
[ -n "$RESTORED" ] || fail "relaunched daemon never answered through the gateway"
printf '%s\n' "$LIST" | grep -q 'tenant=scout shared_pool=on .*restored_examples=[1-9]' \
    || fail "the scout's synopsis did not restore: $LIST"
printf '%s\n' "$LIST" | grep -q 'tenant=default .*restored_examples=[1-9]' \
    || fail "the default tenant's synopsis did not restore: $LIST"

# Clean shutdown through the admin route, bounded.
denied 403 --token hunter2 POST "$BASE/v1/shutdown"
http --token swordfish POST "$BASE/v1/shutdown" >/dev/null || fail "shutdown rejected"
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || { DAEMON_PID=""; break; }
    sleep 0.1
done
[ -z "$DAEMON_PID" ] || fail "daemon still alive after POST /v1/shutdown"

kill "$GATEWAY_PID" 2>/dev/null
wait "$GATEWAY_PID" 2>/dev/null
GATEWAY_PID=""
rm -rf "$DIR"
echo "gateway_smoke: OK"
