#!/usr/bin/env bash
# End-to-end smoke for the resident fleet daemon (the CI daemon job):
#
#   launch (2 replicas, online fault mix, incremental snapshot log)
#     -> wait for the shared store to learn a fix
#     -> ADD / REPLICAS / QUERY FIXES / SNAPSHOT over selfheal-ctl
#     -> RECONFIGURE adversary=on, STATUS must show a strike target
#     -> kill -9, relaunch from the same log
#     -> STATUS must show restored synopsis counts
#     -> clean SHUTDOWN within a bounded wait
#
# Exits 1 on any failed step.  Binaries default to target/release; override
# with DAEMON= / CTL=.
set -u

DAEMON="${DAEMON:-target/release/selfheal-daemon}"
CTL="${CTL:-target/release/selfheal-ctl}"
DIR="$(mktemp -d)"
SOCKET="$DIR/control.sock"
STORE="$DIR/synopsis.jsonl"
SNAPSHOT="$DIR/fixes.jsonl"
PID=""

fail() {
    echo "daemon_smoke: FAIL: $*" >&2
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null
    rm -rf "$DIR"
    exit 1
}

ctl() { "$CTL" --socket "$SOCKET" --timeout-secs 20 "$@"; }

launch() {
    "$DAEMON" --socket "$SOCKET" --store "$STORE" --replicas 2 \
        --fault-mix online:0.02 &
    PID=$!
    # The socket file may be stale from a previous (killed) life, so poll
    # for a served STATUS rather than for the file.
    for _ in $(seq 1 100); do
        ctl STATUS >/dev/null 2>&1 && return 0
        kill -0 "$PID" 2>/dev/null || fail "daemon exited at launch"
        sleep 0.1
    done
    fail "control socket never answered"
}

[ -x "$DAEMON" ] || fail "$DAEMON is not built (cargo build --release)"
[ -x "$CTL" ] || fail "$CTL is not built (cargo build --release)"

# First life: learn under the fault mix.
launch
LEARNED=""
for _ in $(seq 1 300); do
    STATUS="$(ctl STATUS 2>/dev/null)" || STATUS=""
    if printf '%s\n' "$STATUS" | grep -q 'fixes_known=[1-9]'; then
        LEARNED=1
        break
    fi
    sleep 0.1
done
[ -n "$LEARNED" ] || fail "fleet never learned a fix; last STATUS: $STATUS"

# Control plane: grow the fleet, inspect it, query the live store.
ctl ADD online:0.05 >/dev/null || fail "ADD rejected"
REPLICAS="$(ctl REPLICAS)" || fail "REPLICAS rejected"
COUNT="$(printf '%s\n' "$REPLICAS" | grep -c '^replica ')"
[ "$COUNT" -eq 3 ] || fail "expected 3 replicas, got $COUNT: $REPLICAS"
ctl QUERY FIXES | grep -q 'fix=' || fail "QUERY FIXES returned no experience"

# Exit codes are part of the ctl contract: a daemon ERR reply exits 1 —
# distinct from transport failures, which exit 2 — so scripts like this
# one can gate on them.
ctl BOGUS >/dev/null 2>&1
[ $? -eq 1 ] || fail "ctl must exit 1 on an ERR reply (unknown command)"
ctl @ghost STATUS >/dev/null 2>&1
[ $? -eq 1 ] || fail "ctl must exit 1 on an ERR reply (unknown tenant)"
"$CTL" --socket "$DIR/absent.sock" --timeout-secs 2 STATUS >/dev/null 2>&1
[ $? -eq 2 ] || fail "ctl must exit 2 when the socket is unreachable"

# Live adversary: turn the fleet-wide weakest-replica targeter on, wait
# for STATUS to report a strike target, then stand it down.
ctl RECONFIGURE 0 adversary=on | grep -q 'adversary=on' \
    || fail "RECONFIGURE adversary=on rejected"
TARGETED=""
for _ in $(seq 1 300); do
    STATUS="$(ctl STATUS 2>/dev/null)" || STATUS=""
    if printf '%s\n' "$STATUS" | grep -q 'adversary_target=[0-9]'; then
        TARGETED=1
        break
    fi
    sleep 0.1
done
[ -n "$TARGETED" ] || fail "adversary never struck; last STATUS: $STATUS"
ctl RECONFIGURE 0 adversary=off | grep -q 'adversary=off' \
    || fail "RECONFIGURE adversary=off rejected"
ctl STATUS | grep -q 'adversary=off adversary_target=none' \
    || fail "adversary did not stand down"

# Snapshot on demand: the file must hold actual examples.
ctl SNAPSHOT "$SNAPSHOT" >/dev/null || fail "SNAPSHOT rejected"
[ -s "$SNAPSHOT" ] || fail "snapshot file is empty"
grep -q '"fix"' "$SNAPSHOT" || fail "snapshot holds no examples"

# kill -9: only what the incremental log already drained survives.
kill -9 "$PID" || fail "kill -9 failed"
wait "$PID" 2>/dev/null
PID=""
[ -s "$STORE" ] || fail "snapshot log is empty after the crash"

# Second life: the log replay restores the synopsis.
launch
STATUS="$(ctl STATUS)" || fail "STATUS after restart rejected"
printf '%s\n' "$STATUS" | grep -q 'restored_examples=[1-9]' \
    || fail "nothing restored after the crash: $STATUS"
printf '%s\n' "$STATUS" | grep -q 'fixes_known=[1-9]' \
    || fail "restored store knows no fixes: $STATUS"

# Clean shutdown, bounded.
ctl SHUTDOWN | grep -q 'shutting down' || fail "SHUTDOWN rejected"
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || { PID=""; break; }
    sleep 0.1
done
[ -z "$PID" ] || fail "daemon still alive after SHUTDOWN"

rm -rf "$DIR"
echo "daemon_smoke: OK"
